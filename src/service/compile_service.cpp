#include "service/compile_service.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <sstream>

#include "codegen/spmd_printer.hpp"
#include "support/diagnostics.hpp"

namespace fortd::service {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

std::string fmt(const char* format, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, format);
  std::vsnprintf(buf, sizeof(buf), format, ap);
  va_end(ap);
  return buf;
}

}  // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      pool_(std::max(1, options_.jobs) - 1),
      ast_cache_(options_.ast_cache_bytes),
      sessions_(options_.max_sessions, options_.jobs, &pool_,
                options_.cache_dir, options_.cache_max_bytes) {
  loop_.set_cycle_handler(
      [this](std::vector<net::ServerLoop::InFrame>& frames) {
        on_cycle(frames);
      });
  loop_.set_closed_handler([this](ConnId id) { hello_done_.erase(id); });
}

CompileService::~CompileService() { stop(); }

bool CompileService::start(std::string* err) {
  if (loop_.running()) return true;
  net::ServerLoop::Options lo;
  lo.host = options_.host;
  lo.port = options_.port;
  if (!loop_.start(lo, err)) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
    draining_ = false;
  }
  const int n = std::max(1, options_.executors);
  executors_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i)
    executors_.emplace_back([this] { executor_loop(); });
  return true;
}

void CompileService::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  flush_drain_waiters_locked();
  drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
}

void CompileService::stop() {
  if (!loop_.running() && executors_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : executors_) t.join();
  executors_.clear();
  loop_.stop();
}

void CompileService::send_reply(const Job& job,
                                remote::CompileReplyWire creply,
                                remote::CompileStatus status) {
  creply.status = static_cast<uint8_t>(status);
  remote::WireMessage reply;
  reply.type = remote::MsgType::CompileReply;
  reply.request_id = job.request_id;
  reply.creply = std::move(creply);
  auto bytes = encode_message(reply);
  {
    std::lock_guard<std::mutex> lock(mu_);
    switch (status) {
      case remote::CompileStatus::Ok: ++metrics_.ok; break;
      case remote::CompileStatus::CompileFail: ++metrics_.compile_fail; break;
      case remote::CompileStatus::Rejected: ++metrics_.rejected; break;
      case remote::CompileStatus::DeadlineExpired:
        ++metrics_.deadline_expired;
        break;
      case remote::CompileStatus::Draining: ++metrics_.draining; break;
    }
    metrics_.reply_bytes_total += bytes.size();
  }
  loop_.send(job.conn, std::move(bytes));
}

void CompileService::on_cycle(std::vector<net::ServerLoop::InFrame>& frames) {
  for (auto& in : frames) {
    auto msg = remote::decode_message(in.payload);
    if (!msg) {
      loop_.drop(in.conn);
      std::lock_guard<std::mutex> lock(mu_);
      ++metrics_.protocol_errors;
      continue;
    }
    auto hello = hello_done_.find(in.conn);
    if (hello == hello_done_.end() || !hello->second) {
      const uint64_t expected = options_.format_hash_override
                                    ? options_.format_hash_override
                                    : remote::remote_wire_format_hash();
      remote::WireMessage reply;
      reply.request_id = msg->request_id;
      switch (remote::process_hello(*msg, expected, &reply)) {
        case remote::HelloOutcome::Ok:
          hello_done_[in.conn] = true;
          loop_.send(in.conn, encode_message(reply));
          break;
        case remote::HelloOutcome::Reject:
          loop_.send(in.conn, encode_message(reply));
          loop_.close_after_flush(in.conn);
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++metrics_.handshake_rejects;
          }
          break;
        case remote::HelloOutcome::Protocol: {
          loop_.drop(in.conn);
          std::lock_guard<std::mutex> lock(mu_);
          ++metrics_.protocol_errors;
          break;
        }
      }
      continue;
    }

    switch (msg->type) {
      case remote::MsgType::Compile: {
        Job job;
        job.conn = in.conn;
        job.request_id = msg->request_id;
        job.source = std::move(msg->text);
        job.copts = msg->copts;
        job.enqueued = Clock::now();
        const uint32_t deadline_ms = job.copts.deadline_ms
                                         ? job.copts.deadline_ms
                                         : options_.default_deadline_ms;
        if (deadline_ms) {
          job.has_deadline = true;
          job.deadline =
              job.enqueued + std::chrono::milliseconds(deadline_ms);
        }
        bool admitted = false;
        remote::CompileStatus refusal = remote::CompileStatus::Rejected;
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++metrics_.requests;
          if (draining_ || stop_) {
            refusal = remote::CompileStatus::Draining;
          } else if (queue_.size() >= options_.max_queue) {
            refusal = remote::CompileStatus::Rejected;
          } else {
            queue_.push_back(std::move(job));
            metrics_.queue_peak =
                std::max(metrics_.queue_peak, queue_.size());
            admitted = true;
          }
        }
        if (admitted) {
          work_cv_.notify_one();
        } else {
          send_reply(job, remote::CompileReplyWire{}, refusal);
        }
        break;
      }
      case remote::MsgType::Metrics: {
        remote::WireMessage reply;
        reply.type = remote::MsgType::MetricsOk;
        reply.request_id = msg->request_id;
        reply.text = metrics_json();
        loop_.send(in.conn, encode_message(reply));
        break;
      }
      case remote::MsgType::Drain: {
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = true;
        drain_waiters_.emplace_back(in.conn, msg->request_id);
        flush_drain_waiters_locked();
        break;
      }
      default: {
        remote::WireMessage reply;
        reply.type = remote::MsgType::Error;
        reply.request_id = msg->request_id;
        reply.text = "unexpected message type";
        loop_.send(in.conn, encode_message(reply));
        loop_.close_after_flush(in.conn);
        break;
      }
    }
  }
}

void CompileService::flush_drain_waiters_locked() {
  if (!draining_ || !queue_.empty() || in_flight_ != 0) return;
  for (const auto& [conn, request_id] : drain_waiters_) {
    remote::WireMessage reply;
    reply.type = remote::MsgType::DrainOk;
    reply.request_id = request_id;
    loop_.send(conn, encode_message(reply));
  }
  drain_waiters_.clear();
  drain_cv_.notify_all();
}

void CompileService::executor_loop() {
  for (;;) {
    Job job;
    double queue_ms = 0.0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      metrics_.in_flight_peak = std::max(metrics_.in_flight_peak, in_flight_);
      queue_ms = ms_since(job.enqueued);
      metrics_.queue_ms_total += queue_ms;
      metrics_.queue_ms_max = std::max(metrics_.queue_ms_max, queue_ms);
    }
    run_job(job, queue_ms);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      flush_drain_waiters_locked();
      drain_cv_.notify_all();
    }
  }
}

void CompileService::run_job(Job& job, double queue_ms) {
  if (job.has_deadline && Clock::now() > job.deadline) {
    // The whole budget went to queueing: dropping beats compiling work
    // whose requester already gave up and fell back to a local compile.
    send_reply(job, remote::CompileReplyWire{},
               remote::CompileStatus::DeadlineExpired);
    return;
  }
  if (options_.before_compile) options_.before_compile();

  remote::CompileReplyWire cw;
  remote::CompileStatus status = remote::CompileStatus::Ok;
  const auto t_start = Clock::now();
  double parse_ms = 0.0;
  CompilerStats stats;
  try {
    int parsed = 0;
    SourceProgram ast = ast_cache_.get(job.source, &parsed);
    parse_ms = ms_since(t_start);
    cw.parsed_procedures = static_cast<uint32_t>(parsed);

    auto session = sessions_.acquire(job.copts);
    std::lock_guard<std::mutex> session_lock(session->mu);
    CompileResult result = session->compiler.compile(std::move(ast));
    stats = result.stats;
    cw.generated = static_cast<uint32_t>(stats.generated);
    cw.summaries_computed = static_cast<uint32_t>(stats.summaries_computed);
    cw.spmd = print_spmd(result.spmd);

    // The diagnostics block mirrors fortdc's own stderr lines, so a
    // served compile and a local one read identically to the user.
    std::string diag;
    if (job.copts.analyze) {
      diag += result.lint.text();
      diag += result.verify.text();
      diag += fmt("fortdc: analyze: %d warning(s), %d note(s); spmd: %s\n",
                  result.lint.warnings, result.lint.notes,
                  result.verify.summary().c_str());
      cw.findings = static_cast<uint32_t>(
          result.lint.warnings +
          static_cast<int>(result.verify.diags.size()));
      if (job.copts.want_lint_json)
        cw.lint_json = session->compiler.last_lint_report().json();
    }
    const CompileStats& st = result.spmd.stats;
    diag += fmt("fortdc: %d clone(s), %d reduced loop(s), %d guard(s), "
                "%d vectorized message(s), %d delayed comm(s), "
                "%d run-time-resolved stmt(s)\n",
                st.clones_created, st.loops_bounds_reduced,
                st.guards_inserted, st.vectorized_messages,
                st.delayed_comms_exported + st.delayed_comms_absorbed,
                st.runtime_resolved_stmts);
    cw.diagnostics = std::move(diag);
  } catch (const CompileError& e) {
    status = remote::CompileStatus::CompileFail;
    cw.diagnostics = fmt("fortdc: %s\n", e.what());
  }
  const double compile_ms = ms_since(t_start) - parse_ms;

  {
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.parse_ms_total += parse_ms;
    metrics_.compile_ms_total += compile_ms;
  }
  if (job.copts.want_timings) {
    cw.timings_json = fmt(
        "{\"queue_ms\":%.2f,\"parse_ms\":%.2f,\"compile_ms\":%.2f,"
        "\"bind_ms\":%.2f,\"ipa_ms\":%.2f,\"overlap_ms\":%.2f,"
        "\"codegen_ms\":%.2f,\"parsed_procedures\":%u,\"generated\":%u,"
        "\"summaries_computed\":%u,\"jobs\":%d}",
        queue_ms, parse_ms, compile_ms, stats.bind_ms, stats.ipa_ms,
        stats.overlap_ms, stats.codegen_ms, cw.parsed_procedures,
        cw.generated, cw.summaries_computed, stats.jobs);
  }
  send_reply(job, std::move(cw), status);
}

std::string CompileService::metrics_json() const {
  const auto lc = loop_.counters();
  const auto ac = ast_cache_.counters();
  const auto sc = sessions_.counters();
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  char num[64];
  auto put_ms = [&](const char* key, double v, bool comma = true) {
    std::snprintf(num, sizeof(num), "\"%s\":%.2f", key, v);
    out << num;
    if (comma) out << ",";
  };
  out << "{\"requests\":" << metrics_.requests << ",\"ok\":" << metrics_.ok
      << ",\"compile_fail\":" << metrics_.compile_fail
      << ",\"rejected\":" << metrics_.rejected
      << ",\"deadline_expired\":" << metrics_.deadline_expired
      << ",\"draining\":" << metrics_.draining
      << ",\"handshake_rejects\":" << metrics_.handshake_rejects
      << ",\"protocol_errors\":" << metrics_.protocol_errors + lc.frame_errors
      << ",\"in_flight_peak\":" << metrics_.in_flight_peak
      << ",\"queue_peak\":" << metrics_.queue_peak << ",";
  put_ms("queue_ms_total", metrics_.queue_ms_total);
  put_ms("queue_ms_max", metrics_.queue_ms_max);
  put_ms("parse_ms_total", metrics_.parse_ms_total);
  put_ms("compile_ms_total", metrics_.compile_ms_total);
  out << "\"reply_bytes_total\":" << metrics_.reply_bytes_total
      << ",\"connections_accepted\":" << lc.connections_accepted
      << ",\"disconnects_mid_reply\":" << lc.disconnects_mid_reply
      << ",\"replies_dropped\":" << lc.replies_dropped
      << ",\"ast_cache\":{\"hits\":" << ac.hits << ",\"misses\":" << ac.misses
      << ",\"evictions\":" << ac.evictions << ",\"bytes\":" << ac.bytes
      << ",\"entries\":" << ac.entries
      << "},\"sessions\":{\"hits\":" << sc.hits << ",\"misses\":" << sc.misses
      << ",\"evictions\":" << sc.evictions << ",\"resident\":" << sc.sessions
      << "}}";
  return out.str();
}

}  // namespace fortd::service
