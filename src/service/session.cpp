#include "service/session.hpp"

#include "frontend/ast_serialize.hpp"
#include "frontend/parser.hpp"
#include "support/serialize.hpp"

namespace fortd::service {

SourceProgram AstCache::get(const std::string& source,
                            int* parsed_procedures) {
  const uint64_t digest =
      fnv1a(reinterpret_cast<const uint8_t*>(source.data()), source.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      lru_.erase(it->second.lru);
      lru_.push_front(digest);
      it->second.lru = lru_.begin();
      BinaryReader r(it->second.bytes);
      SourceProgram ast;
      const size_t n = r.count();
      for (size_t i = 0; i < n && r.ok(); ++i)
        ast.procedures.push_back(read_procedure(r));
      if (r.ok() && r.at_end()) {
        ++counters_.hits;
        if (parsed_procedures) *parsed_procedures = 0;
        return ast;
      }
      // A round-trip failure here would be a serializer bug; degrade to
      // a plain parse rather than fail the request.
      bytes_ -= it->second.bytes.size();
      lru_.erase(it->second.lru);
      entries_.erase(it);
    }
  }

  SourceProgram ast = parse_program(source);  // throws CompileError
  BinaryWriter w;
  w.count(ast.procedures.size());
  for (const auto& proc : ast.procedures) write_procedure(w, *proc);
  std::vector<uint8_t> bytes = w.take();

  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  if (parsed_procedures)
    *parsed_procedures = static_cast<int>(ast.procedures.size());
  if (bytes.size() <= max_bytes_ && !entries_.count(digest)) {
    bytes_ += bytes.size();
    lru_.push_front(digest);
    Entry e;
    e.bytes = std::move(bytes);
    e.procedures = static_cast<int>(ast.procedures.size());
    e.lru = lru_.begin();
    entries_.emplace(digest, std::move(e));
    evict_locked();
  }
  return ast;
}

void AstCache::evict_locked() {
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const uint64_t victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes.size();
    entries_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
  }
}

AstCache::Counters AstCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.bytes = bytes_;
  c.entries = entries_.size();
  return c;
}

SessionCache::SessionCache(size_t max_sessions, int jobs, ThreadPool* pool,
                           std::string cache_dir, uint64_t cache_max_bytes)
    : max_sessions_(max_sessions < 1 ? 1 : max_sessions),
      jobs_(jobs < 1 ? 1 : jobs),
      pool_(pool),
      cache_dir_(std::move(cache_dir)),
      cache_max_bytes_(cache_max_bytes) {}

uint64_t SessionCache::key_of(const remote::CompileOptionsWire& copts) {
  // analyze is part of the key: a lint-enabled Compiler carries lint
  // state the plain one does not. want_lint_json/want_timings are
  // reply-shaping only and deliberately excluded.
  return (static_cast<uint64_t>(copts.n_procs) << 32) |
         (static_cast<uint64_t>(copts.strategy) << 16) |
         (static_cast<uint64_t>(copts.dyn_decomp) << 8) |
         static_cast<uint64_t>(copts.analyze ? 1 : 0);
}

std::shared_ptr<Session> SessionCache::acquire(
    const remote::CompileOptionsWire& copts) {
  const uint64_t key = key_of(copts);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(key);
  if (it != sessions_.end()) {
    lru_.erase(it->second.second);
    lru_.push_front(key);
    it->second.second = lru_.begin();
    ++counters_.hits;
    return it->second.first;
  }

  CodegenOptions options;
  options.n_procs = static_cast<int>(copts.n_procs);
  options.jobs = jobs_;
  options.strategy = static_cast<Strategy>(copts.strategy);
  options.dyn_decomp = static_cast<DynDecompOpt>(copts.dyn_decomp);
  IpaOptions ipa_options;
  LintOptions lint_options;
  if (copts.analyze) {
    lint_options.analyze = true;
    lint_options.verify_spmd = true;
  }
  CacheOptions cache_options;
  cache_options.dir = cache_dir_;
  cache_options.max_bytes = cache_max_bytes_;

  auto session = std::make_shared<Session>(options, ipa_options,
                                           lint_options,
                                           std::move(cache_options));
  if (pool_) session->compiler.set_shared_pool(pool_);
  lru_.push_front(key);
  sessions_.emplace(key, std::make_pair(session, lru_.begin()));
  ++counters_.misses;
  while (sessions_.size() > max_sessions_) {
    const uint64_t victim = lru_.back();
    sessions_.erase(victim);
    lru_.pop_back();
    ++counters_.evictions;
  }
  return session;
}

SessionCache::Counters SessionCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Counters c = counters_;
  c.sessions = sessions_.size();
  return c;
}

}  // namespace fortd::service
