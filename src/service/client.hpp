// CompileClient — fortdc's side of -server: ship source + options to a
// resident fortdd daemon, get the generated SPMD text, diagnostics, and
// per-request timings back.
//
// Strictly best-effort: every failure mode — refused connection,
// handshake skew, timeout, garbage, or a daemon that answers Rejected /
// DeadlineExpired / Draining — comes back as nullopt with a one-line
// reason, and the caller degrades to a local in-process compile. A
// daemon problem is never a compile error. The only reply that is
// authoritative is Ok or CompileFail: those reflect the program itself,
// and the same source would succeed or fail identically compiled
// locally.
#pragma once

#include <optional>
#include <string>

#include "remote/protocol.hpp"

namespace fortd::service {

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 4816;
  /// Round-trip budget: connect + handshake + compile + reply.
  int timeout_ms = 30000;
  /// Nonzero: sent in HELLO instead of remote_wire_format_hash() (tests
  /// provoke the version-skew rejection path with this).
  uint64_t format_hash_override = 0;
};

/// Parse "host:port" (host optional: ":4816" and "4816" also work).
std::optional<ClientOptions> parse_server_endpoint(const std::string& spec);

class CompileClient {
 public:
  explicit CompileClient(ClientOptions options) : options_(std::move(options)) {}

  /// One COMPILE round trip. A reply with status Ok or CompileFail is
  /// returned; every daemon-side condition (unreachable, skew, timeout,
  /// Rejected, DeadlineExpired, Draining) yields nullopt with `reason`
  /// set — the caller's cue to compile locally.
  std::optional<remote::CompileReplyWire> compile(
      const std::string& source, const remote::CompileOptionsWire& copts,
      std::string* reason);

  /// One METRICS round trip: the daemon's service metrics JSON.
  std::optional<std::string> fetch_metrics(std::string* reason);

  /// One DRAIN round trip: true once the daemon finished its in-flight
  /// work (fortdd-initiated shutdown can be awaited from a script).
  bool drain(std::string* reason);

 private:
  /// Connect + HELLO + `req`, then await the matching reply under the
  /// deadline.
  std::optional<remote::WireMessage> roundtrip(const remote::WireMessage& req,
                                               std::string* reason);

  ClientOptions options_;
};

}  // namespace fortd::service
