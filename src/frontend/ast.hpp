// Abstract syntax tree for the Fortran D dialect.
//
// One AST serves two levels:
//   * the *source* level produced by the parser (assignments, DO loops,
//     IFs, CALLs, ALIGN/DISTRIBUTE statements), and
//   * the *SPMD* level produced by code generation, which adds explicit
//     message-passing statements (Send/Recv/Broadcast), data-remapping
//     statements, and processor-id intrinsics. The parser never produces
//     SPMD-level nodes; the interpreter and the pretty-printer handle both.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace fortd {

enum class ElemType { Real, Integer, Logical };

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  IntLit,
  RealLit,
  VarRef,    // scalar variable (or whole-array actual argument)
  ArrayRef,  // subscripted reference
  Binary,
  Unary,
  FuncCall,  // intrinsic or user function used inside an expression
};

enum class BinOp { Add, Sub, Mul, Div, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnOp { Neg, Not };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  long long int_val = 0;   // IntLit
  double real_val = 0.0;   // RealLit
  std::string name;        // VarRef / ArrayRef / FuncCall
  BinOp bin_op = BinOp::Add;
  UnOp un_op = UnOp::Neg;
  // Binary: {lhs, rhs}; Unary: {operand}; ArrayRef: subscripts;
  // FuncCall: arguments.
  std::vector<ExprPtr> args;

  ExprPtr clone() const;
  bool structurally_equal(const Expr& other) const;

  // -- factories --------------------------------------------------------
  static ExprPtr make_int(long long v, SourceLoc loc = {});
  static ExprPtr make_real(double v, SourceLoc loc = {});
  static ExprPtr make_var(std::string name, SourceLoc loc = {});
  static ExprPtr make_array_ref(std::string name, std::vector<ExprPtr> subs,
                                SourceLoc loc = {});
  static ExprPtr make_binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc = {});
  static ExprPtr make_unary(UnOp op, ExprPtr operand, SourceLoc loc = {});
  static ExprPtr make_call(std::string name, std::vector<ExprPtr> args,
                           SourceLoc loc = {});
};

/// A Fortran-90-style triplet `lb:ub:step` used by SPMD message statements
/// to describe an array section (a syntactic RSD; see ir/rsd.hpp for the
/// value-level form used by analysis).
struct SectionExpr {
  ExprPtr lb;
  ExprPtr ub;
  ExprPtr step;  // null means 1

  SectionExpr clone() const;
};

// ---------------------------------------------------------------------------
// Distribution specifications
// ---------------------------------------------------------------------------

enum class DistKind { None, Block, Cyclic, BlockCyclic };

struct DistSpec {
  DistKind kind = DistKind::None;
  int block_size = 0;  // BlockCyclic only

  bool operator==(const DistSpec&) const = default;
  std::string str() const;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  // -- source level --
  Assign,
  If,
  Do,
  Call,
  Return,
  Continue,
  Align,       // executable ALIGN a(i,j) WITH d(j,i)
  Distribute,  // executable DISTRIBUTE d(BLOCK,:)
  // -- SPMD level (emitted by code generation only) --
  Send,       // send section of array to processor `peer`
  Recv,       // receive section of array from processor `peer`
  Broadcast,  // broadcast section from processor `peer` (root) to all
  Remap,      // runtime remap of array between distributions (copies data)
  MarkDist,   // array-kill optimized remap: relabel distribution, no copy
  AllReduce,  // combine a scalar across all processors (sum/min/max)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  StmtKind kind;
  int id = -1;  // unique within the enclosing procedure; -1 for synthesized
  SourceLoc loc;

  // Assign
  ExprPtr lhs;  // VarRef or ArrayRef
  ExprPtr rhs;

  // If
  ExprPtr cond;
  std::vector<StmtPtr> then_body;
  std::vector<StmtPtr> else_body;

  // Do
  std::string loop_var;
  ExprPtr lb, ub, step;  // step null means 1
  std::vector<StmtPtr> body;

  // Call
  std::string callee;
  std::vector<ExprPtr> call_args;

  // Align
  std::string align_array;
  std::string align_target;       // decomposition (or array) aligned with
  std::vector<int> align_perm;    // align_perm[target_dim] = array dim (0-based)

  // Distribute / Remap / MarkDist
  std::string dist_target;          // decomposition or array name
  std::vector<DistSpec> dist_specs; // new distribution
  std::vector<DistSpec> from_specs; // Remap: previous distribution

  // Send / Recv / Broadcast / AllReduce (msg_array names the scalar)
  std::string msg_array;
  std::vector<SectionExpr> msg_section;
  ExprPtr peer;  // destination (Send), source (Recv), root (Broadcast)
  std::string reduce_op;  // AllReduce: "sum" | "min" | "max"

  StmtPtr clone() const;

  // -- factories ---------------------------------------------------------
  static StmtPtr make_assign(ExprPtr lhs, ExprPtr rhs, SourceLoc loc = {});
  static StmtPtr make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                         std::vector<StmtPtr> else_body = {}, SourceLoc loc = {});
  static StmtPtr make_do(std::string var, ExprPtr lb, ExprPtr ub, ExprPtr step,
                         std::vector<StmtPtr> body, SourceLoc loc = {});
  static StmtPtr make_call(std::string callee, std::vector<ExprPtr> args,
                           SourceLoc loc = {});
  static StmtPtr make_send(std::string array, std::vector<SectionExpr> section,
                           ExprPtr dest);
  static StmtPtr make_recv(std::string array, std::vector<SectionExpr> section,
                           ExprPtr src);
  static StmtPtr make_broadcast(std::string array, std::vector<SectionExpr> section,
                                ExprPtr root);
};

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts);

// ---------------------------------------------------------------------------
// Declarations and procedures
// ---------------------------------------------------------------------------

struct ArrayDim {
  ExprPtr lb;  // null means 1
  ExprPtr ub;

  ArrayDim clone() const;
};

struct VarDecl {
  std::string name;
  ElemType type = ElemType::Real;
  std::vector<ArrayDim> dims;  // empty for scalars
  bool is_decomposition = false;
  SourceLoc loc;

  VarDecl clone() const;
};

struct ParamConst {
  std::string name;
  ExprPtr value;
};

struct CommonBlock {
  std::string name;
  std::vector<std::string> vars;
};

struct Procedure {
  std::string name;
  bool is_program = false;
  std::vector<std::string> formals;
  std::vector<VarDecl> decls;
  std::vector<ParamConst> params;
  std::vector<CommonBlock> commons;
  std::vector<StmtPtr> body;
  int next_stmt_id = 0;  // used when synthesizing statements with fresh ids

  const VarDecl* find_decl(const std::string& name) const;
  VarDecl* find_decl(const std::string& name);
  bool is_formal(const std::string& name) const;
  /// Index of `name` in the formal list, or -1.
  int formal_index(const std::string& name) const;

  std::unique_ptr<Procedure> clone_as(const std::string& new_name) const;
};

/// A whole Fortran D compilation unit (one or more procedures; exactly one
/// PROGRAM for executable units).
struct SourceProgram {
  std::vector<std::unique_ptr<Procedure>> procedures;

  Procedure* find(const std::string& name);
  const Procedure* find(const std::string& name) const;
  Procedure* main();
};

// ---------------------------------------------------------------------------
// Walking helpers
// ---------------------------------------------------------------------------

/// Invoke `fn` on every expression in `e`'s tree (pre-order), including `e`.
void walk_expr(Expr& e, const std::function<void(Expr&)>& fn);
void walk_expr(const Expr& e, const std::function<void(const Expr&)>& fn);

/// Invoke `fn` on every statement in the list (pre-order, recursing into
/// If/Do bodies).
void walk_stmts(std::vector<StmtPtr>& stmts, const std::function<void(Stmt&)>& fn);
void walk_stmts(const std::vector<StmtPtr>& stmts,
                const std::function<void(const Stmt&)>& fn);

/// Invoke `fn` on every expression appearing anywhere in `s` (its own
/// operands only, not nested statements).
void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn);
void for_each_expr(const Stmt& s, const std::function<void(const Expr&)>& fn);

}  // namespace fortd
