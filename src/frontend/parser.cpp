#include "frontend/parser.hpp"

#include "frontend/lexer.hpp"

namespace fortd {

Parser::Parser(std::string_view source, DiagnosticEngine& diags) : diags_(diags) {
  Lexer lexer(source, diags);
  tokens_ = lexer.tokenize();
}

const Token& Parser::peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  if (p >= tokens_.size()) p = tokens_.size() - 1;  // Eof
  return tokens_[p];
}

const Token& Parser::advance() {
  const Token& t = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return t;
}

bool Parser::match(Tok kind) {
  if (!check(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(Tok kind, const char* context) {
  if (!check(kind))
    diags_.error(peek().loc, std::string("expected ") + tok_name(kind) + " " +
                                 context + ", found " + tok_name(peek().kind));
  return advance();
}

void Parser::expect_newline(const char* context) {
  if (check(Tok::Eof)) return;
  expect(Tok::Newline, context);
}

void Parser::skip_newlines() {
  while (match(Tok::Newline)) {
  }
}

SourceProgram Parser::parse_unit() {
  SourceProgram unit;
  skip_newlines();
  while (!check(Tok::Eof)) {
    unit.procedures.push_back(parse_procedure());
    skip_newlines();
  }
  return unit;
}

std::unique_ptr<Procedure> Parser::parse_procedure() {
  auto proc = std::make_unique<Procedure>();
  if (match(Tok::KwProgram)) {
    proc->is_program = true;
    proc->name = expect(Tok::Ident, "after PROGRAM").text;
  } else if (match(Tok::KwSubroutine)) {
    proc->name = expect(Tok::Ident, "after SUBROUTINE").text;
    if (match(Tok::LParen)) {
      if (!check(Tok::RParen)) {
        do {
          proc->formals.push_back(expect(Tok::Ident, "in formal list").text);
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, "closing formal list");
    }
  } else {
    diags_.error(peek().loc, "expected PROGRAM or SUBROUTINE");
  }
  expect_newline("after procedure header");
  parse_declarations(*proc);
  proc->body = parse_body(*proc);
  expect(Tok::KwEnd, "terminating procedure");
  if (!check(Tok::Eof)) expect_newline("after END");
  return proc;
}

void Parser::parse_declarations(Procedure& proc) {
  for (;;) {
    skip_newlines();
    if (match(Tok::KwReal)) {
      parse_type_decl(proc, ElemType::Real, false);
    } else if (match(Tok::KwInteger)) {
      parse_type_decl(proc, ElemType::Integer, false);
    } else if (match(Tok::KwLogical)) {
      parse_type_decl(proc, ElemType::Logical, false);
    } else if (match(Tok::KwDecomposition)) {
      parse_type_decl(proc, ElemType::Real, true);
    } else if (match(Tok::KwParameter)) {
      parse_parameter(proc);
    } else if (match(Tok::KwCommon)) {
      parse_common(proc);
    } else {
      return;
    }
    expect_newline("after declaration");
  }
}

void Parser::parse_type_decl(Procedure& proc, ElemType type, bool is_decomposition) {
  do {
    VarDecl decl;
    decl.type = type;
    decl.is_decomposition = is_decomposition;
    const Token& name = expect(Tok::Ident, "in declaration");
    decl.name = name.text;
    decl.loc = name.loc;
    if (match(Tok::LParen)) {
      do {
        ArrayDim dim;
        dim.ub = parse_additive(proc);
        if (match(Tok::Colon)) {
          dim.lb = std::move(dim.ub);
          dim.ub = parse_additive(proc);
        }
        decl.dims.push_back(std::move(dim));
      } while (match(Tok::Comma));
      expect(Tok::RParen, "closing array dimensions");
    }
    if (proc.find_decl(decl.name))
      diags_.error(decl.loc, "redeclaration of '" + decl.name + "'");
    proc.decls.push_back(std::move(decl));
  } while (match(Tok::Comma));
}

void Parser::parse_parameter(Procedure& proc) {
  expect(Tok::LParen, "after PARAMETER");
  do {
    std::string name = expect(Tok::Ident, "in PARAMETER").text;
    expect(Tok::Assign, "in PARAMETER");
    proc.params.push_back({std::move(name), parse_additive(proc)});
  } while (match(Tok::Comma));
  expect(Tok::RParen, "closing PARAMETER");
}

void Parser::parse_common(Procedure& proc) {
  CommonBlock blk;
  expect(Tok::Slash, "after COMMON");
  blk.name = expect(Tok::Ident, "common block name").text;
  expect(Tok::Slash, "after common block name");
  do {
    blk.vars.push_back(expect(Tok::Ident, "in COMMON list").text);
  } while (match(Tok::Comma));
  proc.commons.push_back(std::move(blk));
}

std::vector<StmtPtr> Parser::parse_body(Procedure& proc) {
  std::vector<StmtPtr> stmts;
  for (;;) {
    skip_newlines();
    switch (peek().kind) {
      case Tok::KwEnd:
      case Tok::KwEndDo:
      case Tok::KwEndIf:
      case Tok::KwElse:
      case Tok::Eof:
        return stmts;
      default:
        stmts.push_back(parse_statement(proc));
    }
  }
}

StmtPtr Parser::parse_statement(Procedure& proc) {
  StmtPtr s;
  SourceLoc loc = peek().loc;
  switch (peek().kind) {
    case Tok::KwDo: s = parse_do(proc); break;
    case Tok::KwIf: s = parse_if(proc); break;
    case Tok::KwCall: s = parse_call(proc); break;
    case Tok::KwAlign: s = parse_align(proc); break;
    case Tok::KwDistribute: s = parse_distribute(proc); break;
    case Tok::KwReturn: {
      advance();
      s = std::make_unique<Stmt>();
      s->kind = StmtKind::Return;
      expect_newline("after RETURN");
      break;
    }
    case Tok::KwContinue: {
      advance();
      s = std::make_unique<Stmt>();
      s->kind = StmtKind::Continue;
      expect_newline("after CONTINUE");
      break;
    }
    case Tok::Ident: s = parse_assign(proc); break;
    default:
      diags_.error(loc, std::string("unexpected ") + tok_name(peek().kind) +
                            " at start of statement");
  }
  s->loc = loc;
  if (s->id < 0) s->id = fresh_id(proc);
  return s;
}

StmtPtr Parser::parse_do(Procedure& proc) {
  expect(Tok::KwDo, "DO");
  std::string var = expect(Tok::Ident, "loop variable").text;
  expect(Tok::Assign, "in DO");
  ExprPtr lb = parse_additive(proc);
  expect(Tok::Comma, "in DO bounds");
  ExprPtr ub = parse_additive(proc);
  ExprPtr step;
  if (match(Tok::Comma)) step = parse_additive(proc);
  expect_newline("after DO header");
  std::vector<StmtPtr> body = parse_body(proc);
  expect(Tok::KwEndDo, "terminating DO loop");
  expect_newline("after ENDDO");
  return Stmt::make_do(std::move(var), std::move(lb), std::move(ub),
                       std::move(step), std::move(body));
}

StmtPtr Parser::parse_if(Procedure& proc) {
  expect(Tok::KwIf, "IF");
  expect(Tok::LParen, "after IF");
  ExprPtr cond = parse_expr(proc);
  expect(Tok::RParen, "closing IF condition");
  if (match(Tok::KwThen)) {
    expect_newline("after THEN");
    std::vector<StmtPtr> then_body = parse_body(proc);
    std::vector<StmtPtr> else_body;
    if (match(Tok::KwElse)) {
      expect_newline("after ELSE");
      else_body = parse_body(proc);
    }
    expect(Tok::KwEndIf, "terminating IF");
    expect_newline("after ENDIF");
    return Stmt::make_if(std::move(cond), std::move(then_body),
                         std::move(else_body));
  }
  // Logical IF: a single statement on the same line.
  std::vector<StmtPtr> then_body;
  then_body.push_back(parse_statement(proc));
  return Stmt::make_if(std::move(cond), std::move(then_body));
}

StmtPtr Parser::parse_call(Procedure& proc) {
  expect(Tok::KwCall, "CALL");
  std::string callee = expect(Tok::Ident, "callee name").text;
  std::vector<ExprPtr> args;
  if (match(Tok::LParen)) {
    if (!check(Tok::RParen)) {
      do {
        args.push_back(parse_expr(proc));
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, "closing CALL arguments");
  }
  expect_newline("after CALL");
  return Stmt::make_call(std::move(callee), std::move(args));
}

StmtPtr Parser::parse_align(Procedure& proc) {
  // ALIGN a(i,j) WITH d(j,i)   or   ALIGN a WITH d
  expect(Tok::KwAlign, "ALIGN");
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Align;
  s->align_array = expect(Tok::Ident, "aligned array name").text;
  std::vector<std::string> placeholders;
  if (match(Tok::LParen)) {
    do {
      placeholders.push_back(expect(Tok::Ident, "alignment placeholder").text);
    } while (match(Tok::Comma));
    expect(Tok::RParen, "closing alignment placeholders");
  }
  expect(Tok::KwWith, "in ALIGN");
  s->align_target = expect(Tok::Ident, "alignment target name").text;
  if (match(Tok::LParen)) {
    do {
      const Token& ph = expect(Tok::Ident, "alignment placeholder");
      int found = -1;
      for (size_t i = 0; i < placeholders.size(); ++i)
        if (placeholders[i] == ph.text) found = static_cast<int>(i);
      if (found < 0)
        diags_.error(ph.loc, "alignment placeholder '" + ph.text +
                                 "' not bound on the array side");
      s->align_perm.push_back(found);
    } while (match(Tok::Comma));
    expect(Tok::RParen, "closing alignment target");
  } else {
    // Identity alignment over the array's placeholders.
    for (size_t i = 0; i < placeholders.size(); ++i)
      s->align_perm.push_back(static_cast<int>(i));
  }
  expect_newline("after ALIGN");
  (void)proc;
  return s;
}

DistSpec Parser::parse_dist_spec() {
  DistSpec spec;
  if (match(Tok::Colon)) {
    spec.kind = DistKind::None;
    return spec;
  }
  const Token& name = expect(Tok::Ident, "distribution kind");
  if (name.text == "block") {
    spec.kind = DistKind::Block;
  } else if (name.text == "cyclic") {
    spec.kind = DistKind::Cyclic;
  } else if (name.text == "block_cyclic") {
    spec.kind = DistKind::BlockCyclic;
    expect(Tok::LParen, "after BLOCK_CYCLIC");
    spec.block_size = static_cast<int>(expect(Tok::IntLit, "block size").int_val);
    expect(Tok::RParen, "closing BLOCK_CYCLIC");
  } else {
    diags_.error(name.loc, "unknown distribution kind '" + name.text + "'");
  }
  return spec;
}

StmtPtr Parser::parse_distribute(Procedure& proc) {
  expect(Tok::KwDistribute, "DISTRIBUTE");
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Distribute;
  s->dist_target = expect(Tok::Ident, "distributed name").text;
  expect(Tok::LParen, "after distributed name");
  do {
    s->dist_specs.push_back(parse_dist_spec());
  } while (match(Tok::Comma));
  expect(Tok::RParen, "closing DISTRIBUTE");
  expect_newline("after DISTRIBUTE");
  (void)proc;
  return s;
}

StmtPtr Parser::parse_assign(Procedure& proc) {
  ExprPtr lhs = parse_primary(proc);
  if (lhs->kind != ExprKind::VarRef && lhs->kind != ExprKind::ArrayRef)
    diags_.error(lhs->loc, "left-hand side of assignment must be a variable");
  if (lhs->kind == ExprKind::FuncCall)
    diags_.error(lhs->loc, "cannot assign to function call");
  expect(Tok::Assign, "in assignment");
  ExprPtr rhs = parse_expr(proc);
  expect_newline("after assignment");
  return Stmt::make_assign(std::move(lhs), std::move(rhs));
}

// -- expressions ------------------------------------------------------------

ExprPtr Parser::parse_expr(Procedure& proc) { return parse_or(proc); }

ExprPtr Parser::parse_or(Procedure& proc) {
  ExprPtr e = parse_and(proc);
  while (check(Tok::Or)) {
    SourceLoc loc = advance().loc;
    e = Expr::make_binary(BinOp::Or, std::move(e), parse_and(proc), loc);
  }
  return e;
}

ExprPtr Parser::parse_and(Procedure& proc) {
  ExprPtr e = parse_not(proc);
  while (check(Tok::And)) {
    SourceLoc loc = advance().loc;
    e = Expr::make_binary(BinOp::And, std::move(e), parse_not(proc), loc);
  }
  return e;
}

ExprPtr Parser::parse_not(Procedure& proc) {
  if (check(Tok::Not)) {
    SourceLoc loc = advance().loc;
    return Expr::make_unary(UnOp::Not, parse_not(proc), loc);
  }
  return parse_rel(proc);
}

ExprPtr Parser::parse_rel(Procedure& proc) {
  ExprPtr e = parse_additive(proc);
  BinOp op;
  switch (peek().kind) {
    case Tok::Eq: op = BinOp::Eq; break;
    case Tok::Ne: op = BinOp::Ne; break;
    case Tok::Lt: op = BinOp::Lt; break;
    case Tok::Le: op = BinOp::Le; break;
    case Tok::Gt: op = BinOp::Gt; break;
    case Tok::Ge: op = BinOp::Ge; break;
    default: return e;
  }
  SourceLoc loc = advance().loc;
  return Expr::make_binary(op, std::move(e), parse_additive(proc), loc);
}

ExprPtr Parser::parse_additive(Procedure& proc) {
  ExprPtr e = parse_term(proc);
  for (;;) {
    if (check(Tok::Plus)) {
      SourceLoc loc = advance().loc;
      e = Expr::make_binary(BinOp::Add, std::move(e), parse_term(proc), loc);
    } else if (check(Tok::Minus)) {
      SourceLoc loc = advance().loc;
      e = Expr::make_binary(BinOp::Sub, std::move(e), parse_term(proc), loc);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_term(Procedure& proc) {
  ExprPtr e = parse_unary(proc);
  for (;;) {
    if (check(Tok::Star)) {
      SourceLoc loc = advance().loc;
      e = Expr::make_binary(BinOp::Mul, std::move(e), parse_unary(proc), loc);
    } else if (check(Tok::Slash)) {
      SourceLoc loc = advance().loc;
      e = Expr::make_binary(BinOp::Div, std::move(e), parse_unary(proc), loc);
    } else {
      return e;
    }
  }
}

ExprPtr Parser::parse_unary(Procedure& proc) {
  if (check(Tok::Minus)) {
    SourceLoc loc = advance().loc;
    return Expr::make_unary(UnOp::Neg, parse_unary(proc), loc);
  }
  if (check(Tok::Plus)) advance();
  return parse_primary(proc);
}

bool Parser::is_array_name(const Procedure& proc, const std::string& name) const {
  const VarDecl* d = proc.find_decl(name);
  return d && !d->dims.empty();
}

ExprPtr Parser::parse_primary(Procedure& proc) {
  const Token& t = peek();
  switch (t.kind) {
    case Tok::IntLit: {
      advance();
      return Expr::make_int(t.int_val, t.loc);
    }
    case Tok::RealLit: {
      advance();
      return Expr::make_real(t.real_val, t.loc);
    }
    case Tok::LParen: {
      advance();
      ExprPtr e = parse_expr(proc);
      expect(Tok::RParen, "closing parenthesized expression");
      return e;
    }
    case Tok::Ident: {
      advance();
      if (!check(Tok::LParen)) return Expr::make_var(t.text, t.loc);
      advance();  // '('
      std::vector<ExprPtr> args;
      if (!check(Tok::RParen)) {
        do {
          args.push_back(parse_expr(proc));
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, "closing reference");
      if (is_array_name(proc, t.text))
        return Expr::make_array_ref(t.text, std::move(args), t.loc);
      return Expr::make_call(t.text, std::move(args), t.loc);
    }
    default:
      diags_.error(t.loc, std::string("unexpected ") + tok_name(t.kind) +
                              " in expression");
  }
}

SourceProgram parse_program(std::string_view source) {
  DiagnosticEngine diags;
  Parser parser(source, diags);
  return parser.parse_unit();
}

}  // namespace fortd
