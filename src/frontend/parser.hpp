// Recursive-descent parser producing a SourceProgram from Fortran D text.
//
// A reference `name(exprs)` parses to an ArrayRef when `name` is declared
// as an array (or decomposition) in the current procedure, and to a
// FuncCall otherwise. Declarations must precede executable statements, as
// in Fortran.
#pragma once

#include <string_view>

#include "frontend/ast.hpp"
#include "frontend/token.hpp"

namespace fortd {

class Parser {
public:
  Parser(std::string_view source, DiagnosticEngine& diags);

  /// Parse a complete compilation unit. Throws CompileError on syntax errors.
  SourceProgram parse_unit();

private:
  const Token& peek(int ahead = 0) const;
  const Token& advance();
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind);
  const Token& expect(Tok kind, const char* context);
  void expect_newline(const char* context);
  void skip_newlines();

  std::unique_ptr<Procedure> parse_procedure();
  void parse_declarations(Procedure& proc);
  void parse_type_decl(Procedure& proc, ElemType type, bool is_decomposition);
  void parse_parameter(Procedure& proc);
  void parse_common(Procedure& proc);
  std::vector<StmtPtr> parse_body(Procedure& proc);
  StmtPtr parse_statement(Procedure& proc);
  StmtPtr parse_do(Procedure& proc);
  StmtPtr parse_if(Procedure& proc);
  StmtPtr parse_call(Procedure& proc);
  StmtPtr parse_align(Procedure& proc);
  StmtPtr parse_distribute(Procedure& proc);
  StmtPtr parse_assign(Procedure& proc);
  DistSpec parse_dist_spec();

  ExprPtr parse_expr(Procedure& proc);      // full logical expression
  ExprPtr parse_or(Procedure& proc);
  ExprPtr parse_and(Procedure& proc);
  ExprPtr parse_not(Procedure& proc);
  ExprPtr parse_rel(Procedure& proc);
  ExprPtr parse_additive(Procedure& proc);
  ExprPtr parse_term(Procedure& proc);
  ExprPtr parse_unary(Procedure& proc);
  ExprPtr parse_primary(Procedure& proc);

  bool is_array_name(const Procedure& proc, const std::string& name) const;
  int fresh_id(Procedure& proc) { return proc.next_stmt_id++; }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  DiagnosticEngine& diags_;
};

/// Convenience: parse `source`, using a throw-away DiagnosticEngine.
SourceProgram parse_program(std::string_view source);

}  // namespace fortd
