// Binary (de)serialization of the AST — the SPMD-level procedure bodies
// the persistent compilation database stores per generated procedure.
//
// Round-tripping is field-exact: statement ids, source locations, and
// next_stmt_id are preserved so a procedure rehydrated from disk behaves
// identically to the freshly generated one (the pretty-printer, the
// dynamic-decomposition optimizer, and the simulator all run on cached
// bodies). Statements serialize every field behind presence flags rather
// than a per-kind subset, so a new use of an existing field can never
// silently desynchronize the cache format.
//
// Readers never throw: a malformed payload leaves the BinaryReader's fail
// bit set and the deserializer returns nullptr/nullopt.
#pragma once

#include <optional>

#include "frontend/ast.hpp"
#include "support/serialize.hpp"

namespace fortd {

void write_dist_spec(BinaryWriter& w, const DistSpec& d);
void write_dist_specs(BinaryWriter& w, const std::vector<DistSpec>& v);
void write_expr(BinaryWriter& w, const Expr& e);
void write_expr_opt(BinaryWriter& w, const ExprPtr& e);  // nullable
void write_section_expr(BinaryWriter& w, const SectionExpr& s);
void write_stmt(BinaryWriter& w, const Stmt& s);
void write_stmts(BinaryWriter& w, const std::vector<StmtPtr>& stmts);
void write_procedure(BinaryWriter& w, const Procedure& proc);

/// Each reader returns a null/empty value with r.ok() == false on
/// malformed input; callers check r.ok() once after the outermost read.
DistSpec read_dist_spec(BinaryReader& r);
std::vector<DistSpec> read_dist_specs(BinaryReader& r);
ExprPtr read_expr(BinaryReader& r);
ExprPtr read_expr_opt(BinaryReader& r);
SectionExpr read_section_expr(BinaryReader& r);
StmtPtr read_stmt(BinaryReader& r);
std::vector<StmtPtr> read_stmts(BinaryReader& r);
std::unique_ptr<Procedure> read_procedure(BinaryReader& r);

}  // namespace fortd
