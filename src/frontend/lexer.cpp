#include "frontend/lexer.hpp"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

namespace fortd {

namespace {

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  return out;
}

const std::unordered_map<std::string, Tok>& keyword_table() {
  static const std::unordered_map<std::string, Tok> table = {
      {"program", Tok::KwProgram},
      {"subroutine", Tok::KwSubroutine},
      {"function", Tok::KwFunction},
      {"end", Tok::KwEnd},
      {"enddo", Tok::KwEndDo},
      {"endif", Tok::KwEndIf},
      {"real", Tok::KwReal},
      {"integer", Tok::KwInteger},
      {"logical", Tok::KwLogical},
      {"parameter", Tok::KwParameter},
      {"common", Tok::KwCommon},
      {"decomposition", Tok::KwDecomposition},
      {"align", Tok::KwAlign},
      {"with", Tok::KwWith},
      {"distribute", Tok::KwDistribute},
      {"do", Tok::KwDo},
      {"if", Tok::KwIf},
      {"then", Tok::KwThen},
      {"else", Tok::KwElse},
      {"call", Tok::KwCall},
      {"return", Tok::KwReturn},
      {"continue", Tok::KwContinue},
  };
  return table;
}

}  // namespace

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::RealLit: return "real literal";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::Comma: return "','";
    case Tok::Colon: return "':'";
    case Tok::Slash: return "'/'";
    case Tok::Star: return "'*'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::Assign: return "'='";
    case Tok::Eq: return "'.eq.'";
    case Tok::Ne: return "'.ne.'";
    case Tok::Lt: return "'.lt.'";
    case Tok::Le: return "'.le.'";
    case Tok::Gt: return "'.gt.'";
    case Tok::Ge: return "'.ge.'";
    case Tok::And: return "'.and.'";
    case Tok::Or: return "'.or.'";
    case Tok::Not: return "'.not.'";
    case Tok::KwProgram: return "'program'";
    case Tok::KwSubroutine: return "'subroutine'";
    case Tok::KwFunction: return "'function'";
    case Tok::KwEnd: return "'end'";
    case Tok::KwEndDo: return "'enddo'";
    case Tok::KwEndIf: return "'endif'";
    case Tok::KwReal: return "'real'";
    case Tok::KwInteger: return "'integer'";
    case Tok::KwLogical: return "'logical'";
    case Tok::KwParameter: return "'parameter'";
    case Tok::KwCommon: return "'common'";
    case Tok::KwDecomposition: return "'decomposition'";
    case Tok::KwAlign: return "'align'";
    case Tok::KwWith: return "'with'";
    case Tok::KwDistribute: return "'distribute'";
    case Tok::KwDo: return "'do'";
    case Tok::KwIf: return "'if'";
    case Tok::KwThen: return "'then'";
    case Tok::KwElse: return "'else'";
    case Tok::KwCall: return "'call'";
    case Tok::KwReturn: return "'return'";
    case Tok::KwContinue: return "'continue'";
    case Tok::Newline: return "end of statement";
    case Tok::Eof: return "end of file";
  }
  return "?";
}

Lexer::Lexer(std::string_view source, DiagnosticEngine& diags)
    : src_(source), diags_(diags) {}

char Lexer::peek(int ahead) const {
  size_t p = pos_ + static_cast<size_t>(ahead);
  return p < src_.size() ? src_[p] : '\0';
}

char Lexer::advance() {
  char c = src_[pos_++];
  if (c == '\n') {
    ++line_;
    col_ = 1;
  } else {
    ++col_;
  }
  return c;
}

Token Lexer::make(Tok kind) const {
  Token t;
  t.kind = kind;
  t.loc = tok_start_;
  return t;
}

Token Lexer::lex_number() {
  std::string text;
  bool is_real = false;
  while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
  // A '.' starts a fraction only if not a dot-operator like `1.eq.`.
  if (peek() == '.' && !std::isalpha(static_cast<unsigned char>(peek(1)))) {
    is_real = true;
    text.push_back(advance());
    while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
  }
  if (peek() == 'e' || peek() == 'E' || peek() == 'd' || peek() == 'D') {
    char nxt = peek(1);
    if (std::isdigit(static_cast<unsigned char>(nxt)) || nxt == '+' || nxt == '-') {
      is_real = true;
      advance();
      text.push_back('e');
      if (peek() == '+' || peek() == '-') text.push_back(advance());
      while (std::isdigit(static_cast<unsigned char>(peek()))) text.push_back(advance());
    }
  }
  Token t = make(is_real ? Tok::RealLit : Tok::IntLit);
  t.text = text;
  if (is_real)
    t.real_val = std::strtod(text.c_str(), nullptr);
  else
    t.int_val = std::strtoll(text.c_str(), nullptr, 10);
  return t;
}

Token Lexer::lex_ident_or_keyword() {
  std::string text;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' || peek() == '$')
    text.push_back(advance());
  text = to_lower(text);
  auto it = keyword_table().find(text);
  if (it != keyword_table().end()) return make(it->second);
  Token t = make(Tok::Ident);
  t.text = text;
  return t;
}

Token Lexer::lex_dot_operator() {
  // Called with pos_ at '.', followed by a letter.
  advance();  // '.'
  std::string name;
  while (std::isalpha(static_cast<unsigned char>(peek()))) name.push_back(advance());
  if (peek() == '.') advance();
  else diags_.error(tok_start_, "malformed dot-operator '." + name + "'");
  name = to_lower(name);
  if (name == "eq") return make(Tok::Eq);
  if (name == "ne") return make(Tok::Ne);
  if (name == "lt") return make(Tok::Lt);
  if (name == "le") return make(Tok::Le);
  if (name == "gt") return make(Tok::Gt);
  if (name == "ge") return make(Tok::Ge);
  if (name == "and") return make(Tok::And);
  if (name == "or") return make(Tok::Or);
  if (name == "not") return make(Tok::Not);
  diags_.error(tok_start_, "unknown dot-operator '." + name + ".'");
}

Token Lexer::next() {
  // Skip horizontal whitespace, comments, and '&' line continuations.
  for (;;) {
    char c = peek();
    if (c == ' ' || c == '\t' || c == '\r') {
      advance();
    } else if (c == '!') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '&') {
      // Continuation: swallow '&', trailing spaces/comment, and the newline.
      advance();
      while (!at_end() && peek() != '\n') advance();
      if (!at_end()) advance();
    } else {
      break;
    }
  }
  tok_start_ = {line_, col_};
  if (at_end()) return make(Tok::Eof);

  char c = peek();
  if (c == '\n') {
    advance();
    return make(Tok::Newline);
  }
  if (std::isdigit(static_cast<unsigned char>(c))) return lex_number();
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') return lex_ident_or_keyword();
  if (c == '.' && std::isalpha(static_cast<unsigned char>(peek(1)))) return lex_dot_operator();
  if (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) return lex_number();

  advance();
  switch (c) {
    case '(': return make(Tok::LParen);
    case ')': return make(Tok::RParen);
    case ',': return make(Tok::Comma);
    case ':': return make(Tok::Colon);
    case '+': return make(Tok::Plus);
    case '-': return make(Tok::Minus);
    case '*': return make(Tok::Star);
    case '/':
      if (peek() == '=') { advance(); return make(Tok::Ne); }
      return make(Tok::Slash);
    case '=':
      if (peek() == '=') { advance(); return make(Tok::Eq); }
      return make(Tok::Assign);
    case '<':
      if (peek() == '=') { advance(); return make(Tok::Le); }
      return make(Tok::Lt);
    case '>':
      if (peek() == '=') { advance(); return make(Tok::Ge); }
      return make(Tok::Gt);
    default:
      diags_.error(tok_start_, std::string("unexpected character '") + c + "'");
  }
}

std::vector<Token> Lexer::tokenize() {
  std::vector<Token> out;
  for (;;) {
    Token t = next();
    if (t.kind == Tok::Newline && (out.empty() || out.back().kind == Tok::Newline)) continue;
    out.push_back(t);
    if (t.kind == Tok::Eof) break;
  }
  return out;
}

}  // namespace fortd
