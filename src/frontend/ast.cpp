#include "frontend/ast.hpp"

#include <algorithm>

namespace fortd {

// ---------------------------------------------------------------------------
// Expr
// ---------------------------------------------------------------------------

ExprPtr Expr::clone() const {
  auto c = std::make_unique<Expr>();
  c->kind = kind;
  c->loc = loc;
  c->int_val = int_val;
  c->real_val = real_val;
  c->name = name;
  c->bin_op = bin_op;
  c->un_op = un_op;
  c->args.reserve(args.size());
  for (const auto& a : args) c->args.push_back(a->clone());
  return c;
}

bool Expr::structurally_equal(const Expr& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case ExprKind::IntLit:
      if (int_val != other.int_val) return false;
      break;
    case ExprKind::RealLit:
      if (real_val != other.real_val) return false;
      break;
    case ExprKind::VarRef:
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall:
      if (name != other.name) return false;
      break;
    case ExprKind::Binary:
      if (bin_op != other.bin_op) return false;
      break;
    case ExprKind::Unary:
      if (un_op != other.un_op) return false;
      break;
  }
  if (args.size() != other.args.size()) return false;
  for (size_t i = 0; i < args.size(); ++i)
    if (!args[i]->structurally_equal(*other.args[i])) return false;
  return true;
}

ExprPtr Expr::make_int(long long v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::IntLit;
  e->int_val = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_real(double v, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::RealLit;
  e->real_val = v;
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_var(std::string name, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::VarRef;
  e->name = std::move(name);
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_array_ref(std::string name, std::vector<ExprPtr> subs,
                             SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::ArrayRef;
  e->name = std::move(name);
  e->args = std::move(subs);
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_binary(BinOp op, ExprPtr l, ExprPtr r, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Binary;
  e->bin_op = op;
  e->args.push_back(std::move(l));
  e->args.push_back(std::move(r));
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_unary(UnOp op, ExprPtr operand, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::Unary;
  e->un_op = op;
  e->args.push_back(std::move(operand));
  e->loc = loc;
  return e;
}

ExprPtr Expr::make_call(std::string name, std::vector<ExprPtr> args,
                        SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::FuncCall;
  e->name = std::move(name);
  e->args = std::move(args);
  e->loc = loc;
  return e;
}

SectionExpr SectionExpr::clone() const {
  SectionExpr s;
  s.lb = lb ? lb->clone() : nullptr;
  s.ub = ub ? ub->clone() : nullptr;
  s.step = step ? step->clone() : nullptr;
  return s;
}

std::string DistSpec::str() const {
  switch (kind) {
    case DistKind::None: return ":";
    case DistKind::Block: return "BLOCK";
    case DistKind::Cyclic: return "CYCLIC";
    case DistKind::BlockCyclic:
      return "BLOCK_CYCLIC(" + std::to_string(block_size) + ")";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Stmt
// ---------------------------------------------------------------------------

StmtPtr Stmt::clone() const {
  auto c = std::make_unique<Stmt>();
  c->kind = kind;
  c->id = id;
  c->loc = loc;
  if (lhs) c->lhs = lhs->clone();
  if (rhs) c->rhs = rhs->clone();
  if (cond) c->cond = cond->clone();
  c->then_body = clone_stmts(then_body);
  c->else_body = clone_stmts(else_body);
  c->loop_var = loop_var;
  if (lb) c->lb = lb->clone();
  if (ub) c->ub = ub->clone();
  if (step) c->step = step->clone();
  c->body = clone_stmts(body);
  c->callee = callee;
  c->call_args.reserve(call_args.size());
  for (const auto& a : call_args) c->call_args.push_back(a->clone());
  c->align_array = align_array;
  c->align_target = align_target;
  c->align_perm = align_perm;
  c->dist_target = dist_target;
  c->dist_specs = dist_specs;
  c->from_specs = from_specs;
  c->msg_array = msg_array;
  c->msg_section.reserve(msg_section.size());
  for (const auto& s : msg_section) c->msg_section.push_back(s.clone());
  if (peer) c->peer = peer->clone();
  c->reduce_op = reduce_op;
  return c;
}

StmtPtr Stmt::make_assign(ExprPtr lhs, ExprPtr rhs, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Assign;
  s->lhs = std::move(lhs);
  s->rhs = std::move(rhs);
  s->loc = loc;
  return s;
}

StmtPtr Stmt::make_if(ExprPtr cond, std::vector<StmtPtr> then_body,
                      std::vector<StmtPtr> else_body, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::If;
  s->cond = std::move(cond);
  s->then_body = std::move(then_body);
  s->else_body = std::move(else_body);
  s->loc = loc;
  return s;
}

StmtPtr Stmt::make_do(std::string var, ExprPtr lb, ExprPtr ub, ExprPtr step,
                      std::vector<StmtPtr> body, SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Do;
  s->loop_var = std::move(var);
  s->lb = std::move(lb);
  s->ub = std::move(ub);
  s->step = std::move(step);
  s->body = std::move(body);
  s->loc = loc;
  return s;
}

StmtPtr Stmt::make_call(std::string callee, std::vector<ExprPtr> args,
                        SourceLoc loc) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Call;
  s->callee = std::move(callee);
  s->call_args = std::move(args);
  s->loc = loc;
  return s;
}

StmtPtr Stmt::make_send(std::string array, std::vector<SectionExpr> section,
                        ExprPtr dest) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Send;
  s->msg_array = std::move(array);
  s->msg_section = std::move(section);
  s->peer = std::move(dest);
  return s;
}

StmtPtr Stmt::make_recv(std::string array, std::vector<SectionExpr> section,
                        ExprPtr src) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Recv;
  s->msg_array = std::move(array);
  s->msg_section = std::move(section);
  s->peer = std::move(src);
  return s;
}

StmtPtr Stmt::make_broadcast(std::string array, std::vector<SectionExpr> section,
                             ExprPtr root) {
  auto s = std::make_unique<Stmt>();
  s->kind = StmtKind::Broadcast;
  s->msg_array = std::move(array);
  s->msg_section = std::move(section);
  s->peer = std::move(root);
  return s;
}

std::vector<StmtPtr> clone_stmts(const std::vector<StmtPtr>& stmts) {
  std::vector<StmtPtr> out;
  out.reserve(stmts.size());
  for (const auto& s : stmts) out.push_back(s->clone());
  return out;
}

// ---------------------------------------------------------------------------
// Declarations / procedures
// ---------------------------------------------------------------------------

ArrayDim ArrayDim::clone() const {
  ArrayDim d;
  d.lb = lb ? lb->clone() : nullptr;
  d.ub = ub ? ub->clone() : nullptr;
  return d;
}

VarDecl VarDecl::clone() const {
  VarDecl v;
  v.name = name;
  v.type = type;
  v.dims.reserve(dims.size());
  for (const auto& d : dims) v.dims.push_back(d.clone());
  v.is_decomposition = is_decomposition;
  v.loc = loc;
  return v;
}

const VarDecl* Procedure::find_decl(const std::string& name) const {
  for (const auto& d : decls)
    if (d.name == name) return &d;
  return nullptr;
}

VarDecl* Procedure::find_decl(const std::string& name) {
  for (auto& d : decls)
    if (d.name == name) return &d;
  return nullptr;
}

bool Procedure::is_formal(const std::string& name) const {
  return formal_index(name) >= 0;
}

int Procedure::formal_index(const std::string& name) const {
  auto it = std::find(formals.begin(), formals.end(), name);
  return it == formals.end() ? -1 : static_cast<int>(it - formals.begin());
}

std::unique_ptr<Procedure> Procedure::clone_as(const std::string& new_name) const {
  auto p = std::make_unique<Procedure>();
  p->name = new_name;
  p->is_program = is_program;
  p->formals = formals;
  p->decls.reserve(decls.size());
  for (const auto& d : decls) p->decls.push_back(d.clone());
  p->params.reserve(params.size());
  for (const auto& pc : params) p->params.push_back({pc.name, pc.value->clone()});
  p->commons = commons;
  p->body = clone_stmts(body);
  p->next_stmt_id = next_stmt_id;
  return p;
}

Procedure* SourceProgram::find(const std::string& name) {
  for (auto& p : procedures)
    if (p->name == name) return p.get();
  return nullptr;
}

const Procedure* SourceProgram::find(const std::string& name) const {
  for (const auto& p : procedures)
    if (p->name == name) return p.get();
  return nullptr;
}

Procedure* SourceProgram::main() {
  for (auto& p : procedures)
    if (p->is_program) return p.get();
  return nullptr;
}

// ---------------------------------------------------------------------------
// Walkers
// ---------------------------------------------------------------------------

template <typename ExprT, typename Fn>
static void walk_expr_impl(ExprT& e, const Fn& fn) {
  fn(e);
  for (auto& a : e.args) walk_expr_impl(*a, fn);
}

void walk_expr(Expr& e, const std::function<void(Expr&)>& fn) {
  walk_expr_impl(e, fn);
}

void walk_expr(const Expr& e, const std::function<void(const Expr&)>& fn) {
  walk_expr_impl(e, fn);
}

template <typename StmtsT, typename Fn>
static void walk_stmts_impl(StmtsT& stmts, const Fn& fn) {
  for (auto& s : stmts) {
    fn(*s);
    walk_stmts_impl(s->then_body, fn);
    walk_stmts_impl(s->else_body, fn);
    walk_stmts_impl(s->body, fn);
  }
}

void walk_stmts(std::vector<StmtPtr>& stmts, const std::function<void(Stmt&)>& fn) {
  walk_stmts_impl(stmts, fn);
}

void walk_stmts(const std::vector<StmtPtr>& stmts,
                const std::function<void(const Stmt&)>& fn) {
  walk_stmts_impl(stmts, fn);
}

template <typename StmtT, typename ExprFn>
static void for_each_expr_impl(StmtT& s, const ExprFn& fn) {
  auto visit = [&](auto& e) {
    if (e) walk_expr_impl(*e, fn);
  };
  visit(s.lhs);
  visit(s.rhs);
  visit(s.cond);
  visit(s.lb);
  visit(s.ub);
  visit(s.step);
  visit(s.peer);
  for (auto& a : s.call_args) visit(a);
  for (auto& sec : s.msg_section) {
    visit(sec.lb);
    visit(sec.ub);
    visit(sec.step);
  }
}

void for_each_expr(Stmt& s, const std::function<void(Expr&)>& fn) {
  for_each_expr_impl(s, fn);
}

void for_each_expr(const Stmt& s, const std::function<void(const Expr&)>& fn) {
  for_each_expr_impl(s, fn);
}

}  // namespace fortd
