#include "frontend/ast_serialize.hpp"

namespace fortd {

namespace {

void write_loc(BinaryWriter& w, const SourceLoc& loc) {
  w.i64(loc.line);
  w.i64(loc.col);
}

SourceLoc read_loc(BinaryReader& r) {
  SourceLoc loc;
  loc.line = static_cast<int>(r.i64());
  loc.col = static_cast<int>(r.i64());
  return loc;
}

void write_str_vec(BinaryWriter& w, const std::vector<std::string>& v) {
  w.count(v.size());
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> read_str_vec(BinaryReader& r) {
  std::vector<std::string> v(r.count());
  for (std::string& s : v) s = r.str();
  return v;
}

void write_int_vec(BinaryWriter& w, const std::vector<int>& v) {
  w.count(v.size());
  for (int x : v) w.i64(x);
}

std::vector<int> read_int_vec(BinaryReader& r) {
  std::vector<int> v(r.count());
  for (int& x : v) x = static_cast<int>(r.i64());
  return v;
}

}  // namespace

void write_dist_spec(BinaryWriter& w, const DistSpec& d) {
  w.u8(static_cast<uint8_t>(d.kind));
  w.i64(d.block_size);
}

DistSpec read_dist_spec(BinaryReader& r) {
  DistSpec d;
  uint8_t kind = r.u8();
  if (kind > static_cast<uint8_t>(DistKind::BlockCyclic)) {
    r.fail();
    return d;
  }
  d.kind = static_cast<DistKind>(kind);
  d.block_size = static_cast<int>(r.i64());
  return d;
}

void write_dist_specs(BinaryWriter& w, const std::vector<DistSpec>& v) {
  w.count(v.size());
  for (const DistSpec& d : v) write_dist_spec(w, d);
}

std::vector<DistSpec> read_dist_specs(BinaryReader& r) {
  std::vector<DistSpec> v(r.count());
  for (DistSpec& d : v) d = read_dist_spec(r);
  return v;
}

void write_expr(BinaryWriter& w, const Expr& e) {
  w.u8(static_cast<uint8_t>(e.kind));
  write_loc(w, e.loc);
  switch (e.kind) {
    case ExprKind::IntLit:
      w.i64(e.int_val);
      break;
    case ExprKind::RealLit:
      w.f64(e.real_val);
      break;
    case ExprKind::VarRef:
      w.str(e.name);
      break;
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall:
      w.str(e.name);
      break;
    case ExprKind::Binary:
      w.u8(static_cast<uint8_t>(e.bin_op));
      break;
    case ExprKind::Unary:
      w.u8(static_cast<uint8_t>(e.un_op));
      break;
  }
  if (e.kind != ExprKind::VarRef) {
    w.count(e.args.size());
    for (const ExprPtr& a : e.args) write_expr(w, *a);
  }
}

void write_expr_opt(BinaryWriter& w, const ExprPtr& e) {
  w.boolean(e != nullptr);
  if (e) write_expr(w, *e);
}

ExprPtr read_expr(BinaryReader& r) {
  uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<uint8_t>(ExprKind::FuncCall)) {
    r.fail();
    return nullptr;
  }
  auto e = std::make_unique<Expr>();
  e->kind = static_cast<ExprKind>(kind);
  e->loc = read_loc(r);
  switch (e->kind) {
    case ExprKind::IntLit:
      e->int_val = r.i64();
      break;
    case ExprKind::RealLit:
      e->real_val = r.f64();
      break;
    case ExprKind::VarRef:
    case ExprKind::ArrayRef:
    case ExprKind::FuncCall:
      e->name = r.str();
      break;
    case ExprKind::Binary:
      e->bin_op = static_cast<BinOp>(r.u8());
      break;
    case ExprKind::Unary:
      e->un_op = static_cast<UnOp>(r.u8());
      break;
  }
  if (e->kind != ExprKind::VarRef) {
    size_t n = r.count();
    e->args.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      ExprPtr a = read_expr(r);
      if (!a) return nullptr;
      e->args.push_back(std::move(a));
    }
  }
  return r.ok() ? std::move(e) : nullptr;
}

ExprPtr read_expr_opt(BinaryReader& r) {
  if (!r.boolean()) return nullptr;
  return read_expr(r);
}

void write_section_expr(BinaryWriter& w, const SectionExpr& s) {
  write_expr_opt(w, s.lb);
  write_expr_opt(w, s.ub);
  write_expr_opt(w, s.step);
}

SectionExpr read_section_expr(BinaryReader& r) {
  SectionExpr s;
  s.lb = read_expr_opt(r);
  s.ub = read_expr_opt(r);
  s.step = read_expr_opt(r);
  return s;
}

void write_stmt(BinaryWriter& w, const Stmt& s) {
  w.u8(static_cast<uint8_t>(s.kind));
  w.i64(s.id);
  write_loc(w, s.loc);
  write_expr_opt(w, s.lhs);
  write_expr_opt(w, s.rhs);
  write_expr_opt(w, s.cond);
  write_stmts(w, s.then_body);
  write_stmts(w, s.else_body);
  w.str(s.loop_var);
  write_expr_opt(w, s.lb);
  write_expr_opt(w, s.ub);
  write_expr_opt(w, s.step);
  write_stmts(w, s.body);
  w.str(s.callee);
  w.count(s.call_args.size());
  for (const ExprPtr& a : s.call_args) write_expr(w, *a);
  w.str(s.align_array);
  w.str(s.align_target);
  write_int_vec(w, s.align_perm);
  w.str(s.dist_target);
  write_dist_specs(w, s.dist_specs);
  write_dist_specs(w, s.from_specs);
  w.str(s.msg_array);
  w.count(s.msg_section.size());
  for (const SectionExpr& sec : s.msg_section) write_section_expr(w, sec);
  write_expr_opt(w, s.peer);
  w.str(s.reduce_op);
}

void write_stmts(BinaryWriter& w, const std::vector<StmtPtr>& stmts) {
  w.count(stmts.size());
  for (const StmtPtr& s : stmts) write_stmt(w, *s);
}

StmtPtr read_stmt(BinaryReader& r) {
  uint8_t kind = r.u8();
  if (!r.ok() || kind > static_cast<uint8_t>(StmtKind::AllReduce)) {
    r.fail();
    return nullptr;
  }
  auto s = std::make_unique<Stmt>();
  s->kind = static_cast<StmtKind>(kind);
  s->id = static_cast<int>(r.i64());
  s->loc = read_loc(r);
  s->lhs = read_expr_opt(r);
  s->rhs = read_expr_opt(r);
  s->cond = read_expr_opt(r);
  s->then_body = read_stmts(r);
  s->else_body = read_stmts(r);
  s->loop_var = r.str();
  s->lb = read_expr_opt(r);
  s->ub = read_expr_opt(r);
  s->step = read_expr_opt(r);
  s->body = read_stmts(r);
  s->callee = r.str();
  size_t n_args = r.count();
  s->call_args.reserve(n_args);
  for (size_t i = 0; i < n_args; ++i) {
    ExprPtr a = read_expr(r);
    if (!a) return nullptr;
    s->call_args.push_back(std::move(a));
  }
  s->align_array = r.str();
  s->align_target = r.str();
  s->align_perm = read_int_vec(r);
  s->dist_target = r.str();
  s->dist_specs = read_dist_specs(r);
  s->from_specs = read_dist_specs(r);
  s->msg_array = r.str();
  size_t n_sec = r.count();
  s->msg_section.reserve(n_sec);
  for (size_t i = 0; i < n_sec; ++i) s->msg_section.push_back(read_section_expr(r));
  s->peer = read_expr_opt(r);
  s->reduce_op = r.str();
  return r.ok() ? std::move(s) : nullptr;
}

std::vector<StmtPtr> read_stmts(BinaryReader& r) {
  size_t n = r.count();
  std::vector<StmtPtr> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    StmtPtr s = read_stmt(r);
    if (!s) return {};
    out.push_back(std::move(s));
  }
  return out;
}

void write_procedure(BinaryWriter& w, const Procedure& proc) {
  w.str(proc.name);
  w.boolean(proc.is_program);
  write_str_vec(w, proc.formals);
  w.count(proc.decls.size());
  for (const VarDecl& d : proc.decls) {
    w.str(d.name);
    w.u8(static_cast<uint8_t>(d.type));
    w.count(d.dims.size());
    for (const ArrayDim& dim : d.dims) {
      write_expr_opt(w, dim.lb);
      write_expr_opt(w, dim.ub);
    }
    w.boolean(d.is_decomposition);
    write_loc(w, d.loc);
  }
  w.count(proc.params.size());
  for (const ParamConst& p : proc.params) {
    w.str(p.name);
    write_expr_opt(w, p.value);
  }
  w.count(proc.commons.size());
  for (const CommonBlock& c : proc.commons) {
    w.str(c.name);
    write_str_vec(w, c.vars);
  }
  write_stmts(w, proc.body);
  w.i64(proc.next_stmt_id);
}

std::unique_ptr<Procedure> read_procedure(BinaryReader& r) {
  auto proc = std::make_unique<Procedure>();
  proc->name = r.str();
  proc->is_program = r.boolean();
  proc->formals = read_str_vec(r);
  size_t n_decls = r.count();
  proc->decls.reserve(n_decls);
  for (size_t i = 0; i < n_decls; ++i) {
    VarDecl d;
    d.name = r.str();
    uint8_t ty = r.u8();
    if (ty > static_cast<uint8_t>(ElemType::Logical)) {
      r.fail();
      return nullptr;
    }
    d.type = static_cast<ElemType>(ty);
    size_t n_dims = r.count();
    d.dims.reserve(n_dims);
    for (size_t k = 0; k < n_dims; ++k) {
      ArrayDim dim;
      dim.lb = read_expr_opt(r);
      dim.ub = read_expr_opt(r);
      d.dims.push_back(std::move(dim));
    }
    d.is_decomposition = r.boolean();
    d.loc = read_loc(r);
    proc->decls.push_back(std::move(d));
  }
  size_t n_params = r.count();
  proc->params.reserve(n_params);
  for (size_t i = 0; i < n_params; ++i) {
    ParamConst p;
    p.name = r.str();
    p.value = read_expr_opt(r);
    proc->params.push_back(std::move(p));
  }
  size_t n_commons = r.count();
  proc->commons.reserve(n_commons);
  for (size_t i = 0; i < n_commons; ++i) {
    CommonBlock c;
    c.name = r.str();
    c.vars = read_str_vec(r);
    proc->commons.push_back(std::move(c));
  }
  proc->body = read_stmts(r);
  proc->next_stmt_id = static_cast<int>(r.i64());
  return r.ok() ? std::move(proc) : nullptr;
}

}  // namespace fortd
