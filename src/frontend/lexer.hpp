// Line-oriented lexer for the Fortran D dialect. Statements are
// newline-terminated (Fortran style); '!' starts a comment; keywords and
// identifiers are case-insensitive and reported lower-case. '&' at end of
// line continues the statement onto the next line.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "frontend/token.hpp"

namespace fortd {

class Lexer {
public:
  Lexer(std::string_view source, DiagnosticEngine& diags);

  /// Tokenize the whole buffer. Consecutive Newline tokens are collapsed;
  /// the stream always ends with Eof.
  std::vector<Token> tokenize();

private:
  Token next();
  char peek(int ahead = 0) const;
  char advance();
  bool at_end() const { return pos_ >= src_.size(); }
  Token make(Tok kind) const;
  Token lex_number();
  Token lex_ident_or_keyword();
  Token lex_dot_operator();

  std::string_view src_;
  DiagnosticEngine& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  SourceLoc tok_start_;
};

}  // namespace fortd
