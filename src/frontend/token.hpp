// Token definitions for the Fortran D dialect lexer.
#pragma once

#include <string>

#include "support/diagnostics.hpp"

namespace fortd {

enum class Tok {
  // literals / identifiers
  Ident,
  IntLit,
  RealLit,
  // punctuation
  LParen,
  RParen,
  Comma,
  Colon,
  Slash,
  Star,
  Plus,
  Minus,
  Assign,  // =
  // relational / logical (Fortran dot-operators and symbolic forms)
  Eq,   // .eq. / ==
  Ne,   // .ne. / /=
  Lt,   // .lt. / <
  Le,   // .le. / <=
  Gt,   // .gt. / >
  Ge,   // .ge. / >=
  And,  // .and.
  Or,   // .or.
  Not,  // .not.
  // keywords
  KwProgram,
  KwSubroutine,
  KwFunction,
  KwEnd,
  KwEndDo,
  KwEndIf,
  KwReal,
  KwInteger,
  KwLogical,
  KwParameter,
  KwCommon,
  KwDecomposition,
  KwAlign,
  KwWith,
  KwDistribute,
  KwDo,
  KwIf,
  KwThen,
  KwElse,
  KwCall,
  KwReturn,
  KwContinue,
  // structure
  Newline,
  Eof,
};

struct Token {
  Tok kind = Tok::Eof;
  std::string text;     // identifier / literal spelling (lower-cased for idents)
  long long int_val = 0;
  double real_val = 0.0;
  SourceLoc loc;
};

/// Human-readable token-kind name, for parse-error messages.
const char* tok_name(Tok t);

}  // namespace fortd
