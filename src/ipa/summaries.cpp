#include "ipa/summaries.hpp"

#include <algorithm>
#include <functional>

#include "analysis/dataflow.hpp"
#include "ipa/summary_cache.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

// ---------------------------------------------------------------------------
// OverlapOffsets
// ---------------------------------------------------------------------------

void OverlapOffsets::ensure_rank(int rank) {
  pos.resize(static_cast<size_t>(rank), 0);
  neg.resize(static_cast<size_t>(rank), 0);
}

void OverlapOffsets::merge(const OverlapOffsets& o) {
  ensure_rank(static_cast<int>(std::max(pos.size(), o.pos.size())));
  for (size_t d = 0; d < o.pos.size(); ++d) {
    pos[d] = std::max(pos[d], o.pos[d]);
    neg[d] = std::max(neg[d], o.neg[d]);
  }
}

bool OverlapOffsets::any() const {
  for (size_t d = 0; d < pos.size(); ++d)
    if (pos[d] != 0 || neg[d] != 0) return true;
  return false;
}

std::string OverlapOffsets::str() const {
  std::string s = "(";
  for (size_t d = 0; d < pos.size(); ++d) {
    if (d) s += ",";
    s += "-" + std::to_string(neg[d]) + "/+" + std::to_string(pos[d]);
  }
  return s + ")";
}

// ---------------------------------------------------------------------------
// Decomposition helpers
// ---------------------------------------------------------------------------

std::optional<DecompSpec> spec_for_array(
    const Stmt& distribute, const std::string& array, int array_rank,
    const std::map<std::string, AlignInfo>& align) {
  DecompSpec spec;
  spec.dists.assign(static_cast<size_t>(array_rank), DistSpec{});
  if (distribute.dist_target == array) {
    // Direct distribution of the array itself (implicit identity
    // alignment with a default decomposition).
    for (size_t d = 0; d < distribute.dist_specs.size() &&
                       d < static_cast<size_t>(array_rank);
         ++d)
      spec.dists[d] = distribute.dist_specs[d];
    return spec;
  }
  auto it = align.find(array);
  if (it == align.end() || it->second.target != distribute.dist_target)
    return std::nullopt;
  const std::vector<int>& perm = it->second.perm;
  for (size_t decomp_dim = 0;
       decomp_dim < distribute.dist_specs.size() && decomp_dim < perm.size();
       ++decomp_dim) {
    int array_dim = perm[decomp_dim];
    if (array_dim >= 0 && array_dim < array_rank)
      spec.dists[static_cast<size_t>(array_dim)] =
          distribute.dist_specs[decomp_dim];
  }
  return spec;
}

std::vector<std::string> affected_arrays(
    const Stmt& distribute, const Procedure& proc, const SymbolTable& st,
    const std::map<std::string, AlignInfo>& align) {
  std::vector<std::string> out;
  const Symbol* target = st.lookup(distribute.dist_target);
  if (target && target->is_array()) {
    out.push_back(distribute.dist_target);
  }
  for (const auto& [array, info] : align)
    if (info.target == distribute.dist_target) out.push_back(array);
  (void)proc;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Local reaching decompositions (point-wise, via the data-flow framework)
// ---------------------------------------------------------------------------

namespace {

struct DecompFact {
  std::string array;
  const Stmt* def;  // nullptr = the inherited decomposition (⊤)
};

std::map<std::string, AlignInfo> collect_alignments(const Procedure& proc) {
  std::map<std::string, AlignInfo> align;
  walk_stmts(proc.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Align) return;
    align[s.align_array] = AlignInfo{s.align_target, s.align_perm};
  });
  return align;
}

}  // namespace

std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>>
compute_local_reaching(const BoundProgram& program, const Procedure& proc,
                       const std::map<std::string, std::set<DecompSpec>>& inherited) {
  const SymbolTable& st = program.symtab(proc.name);
  auto align = collect_alignments(proc);

  // Build the fact universe: one inherited fact per array, plus one fact
  // per (distribute statement, affected array).
  std::vector<DecompFact> facts;
  std::map<std::string, std::vector<int>> facts_of_array;
  for (const std::string& a : st.array_names()) {
    facts_of_array[a].push_back(static_cast<int>(facts.size()));
    facts.push_back({a, nullptr});
  }
  walk_stmts(proc.body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Distribute) return;
    for (const std::string& a : affected_arrays(s, proc, st, align)) {
      facts_of_array[a].push_back(static_cast<int>(facts.size()));
      facts.push_back({a, &s});
    }
  });

  const int n = static_cast<int>(facts.size());
  Cfg cfg = Cfg::build(proc);

  auto fact_of = [&](const std::string& array, const Stmt* def) {
    for (int f : facts_of_array[array])
      if (facts[static_cast<size_t>(f)].def == def) return f;
    return -1;
  };

  // Per-statement transfer: DISTRIBUTE kills all facts of affected arrays,
  // generates its own.
  auto apply_stmt = [&](const Stmt& s, BitSet& set) {
    if (s.kind != StmtKind::Distribute) return;
    for (const std::string& a : affected_arrays(s, proc, st, align)) {
      for (int f : facts_of_array[a]) set.reset(f);
      int f = fact_of(a, &s);
      if (f >= 0) set.set(f);
    }
  };

  DataflowProblem problem;
  problem.num_facts = n;
  problem.forward = true;
  problem.may = true;
  problem.gen.assign(static_cast<size_t>(cfg.size()), BitSet(n));
  problem.kill.assign(static_cast<size_t>(cfg.size()), BitSet(n));
  problem.boundary = BitSet(n);
  for (const auto& [a, fs] : facts_of_array)
    problem.boundary.set(fs[0]);  // the inherited fact

  for (const auto& blk : cfg.blocks()) {
    BitSet gen(n), kill(n);
    for (const Stmt* s : blk.stmts) {
      if (s->kind != StmtKind::Distribute) continue;
      for (const std::string& a : affected_arrays(*s, proc, st, align)) {
        for (int f : facts_of_array[a]) {
          kill.set(f);
          gen.reset(f);
        }
        int f = fact_of(a, s);
        if (f >= 0) gen.set(f);
      }
    }
    problem.gen[static_cast<size_t>(blk.id)] = std::move(gen);
    problem.kill[static_cast<size_t>(blk.id)] = std::move(kill);
  }

  DataflowResult res = solve_dataflow(cfg, problem);

  // Convert bit-level facts at each statement into DecompSpec sets.
  std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>> out;
  for (const auto& blk : cfg.blocks()) {
    BitSet cur = res.in[static_cast<size_t>(blk.id)];
    if (blk.id == cfg.entry()) cur = problem.boundary;
    for (const Stmt* s : blk.stmts) {
      std::map<std::string, std::set<DecompSpec>> at;
      for (int f : cur.members()) {
        const DecompFact& fact = facts[static_cast<size_t>(f)];
        const Symbol* sym = st.lookup(fact.array);
        if (!sym) continue;
        if (fact.def == nullptr) {
          // Inherited: expand through `inherited` when present, else ⊤.
          auto it = inherited.find(fact.array);
          if (it != inherited.end() && !it->second.empty()) {
            for (const auto& spec : it->second) at[fact.array].insert(spec);
          } else {
            at[fact.array].insert(DecompSpec::top());
          }
        } else {
          auto spec =
              spec_for_array(*fact.def, fact.array, sym->rank(), align);
          if (spec) at[fact.array].insert(*spec);
        }
      }
      out[s] = std::move(at);
      apply_stmt(*s, cur);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Structural hashing
// ---------------------------------------------------------------------------

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void fnv(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void fnv_str(uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  fnv(h, s.size());
}

void hash_expr(uint64_t& h, const Expr& e) {
  fnv(h, static_cast<uint64_t>(e.kind) + 17);
  fnv(h, static_cast<uint64_t>(e.int_val));
  fnv(h, static_cast<uint64_t>(e.real_val * 4096.0));
  fnv_str(h, e.name);
  fnv(h, static_cast<uint64_t>(e.bin_op));
  fnv(h, static_cast<uint64_t>(e.un_op));
  for (const auto& a : e.args) hash_expr(h, *a);
}

void hash_stmts(uint64_t& h, const std::vector<StmtPtr>& stmts);

void hash_stmt(uint64_t& h, const Stmt& s) {
  fnv(h, static_cast<uint64_t>(s.kind) + 31);
  auto he = [&](const ExprPtr& e) {
    if (e) hash_expr(h, *e);
  };
  he(s.lhs);
  he(s.rhs);
  he(s.cond);
  he(s.lb);
  he(s.ub);
  he(s.step);
  he(s.peer);
  fnv_str(h, s.loop_var);
  fnv_str(h, s.callee);
  for (const auto& a : s.call_args) hash_expr(h, *a);
  fnv_str(h, s.align_array);
  fnv_str(h, s.align_target);
  for (int p : s.align_perm) fnv(h, static_cast<uint64_t>(p));
  fnv_str(h, s.dist_target);
  for (const auto& d : s.dist_specs) {
    fnv(h, static_cast<uint64_t>(d.kind));
    fnv(h, static_cast<uint64_t>(d.block_size));
  }
  hash_stmts(h, s.then_body);
  hash_stmts(h, s.else_body);
  hash_stmts(h, s.body);
}

void hash_stmts(uint64_t& h, const std::vector<StmtPtr>& stmts) {
  fnv(h, stmts.size());
  for (const auto& s : stmts) hash_stmt(h, *s);
}

}  // namespace

uint64_t hash_procedure(const Procedure& proc) {
  uint64_t h = kFnvOffset;
  fnv_str(h, proc.name);
  fnv(h, proc.is_program);
  for (const auto& f : proc.formals) fnv_str(h, f);
  for (const auto& d : proc.decls) {
    fnv_str(h, d.name);
    fnv(h, static_cast<uint64_t>(d.type));
    fnv(h, d.is_decomposition);
    for (const auto& dim : d.dims) {
      if (dim.lb) hash_expr(h, *dim.lb);
      hash_expr(h, *dim.ub);
    }
  }
  for (const auto& p : proc.params) {
    fnv_str(h, p.name);
    hash_expr(h, *p.value);
  }
  for (const auto& c : proc.commons) {
    fnv_str(h, c.name);
    for (const auto& v : c.vars) fnv_str(h, v);
  }
  hash_stmts(h, proc.body);
  return h;
}

// ---------------------------------------------------------------------------
// compute_summary
// ---------------------------------------------------------------------------

namespace {

/// Evaluate the section an array reference touches given the loop context;
/// falls back to the whole declared dimension when a subscript cannot be
/// bounded.
Rsd ref_section(const Expr& ref, const Symbol& sym, const SymbolicEnv& env) {
  std::vector<Triplet> dims;
  for (size_t d = 0; d < ref.args.size() && d < sym.dims.size(); ++d) {
    auto range = eval_range(*ref.args[d], env);
    if (range) {
      dims.push_back(*range);
    } else {
      auto [lb, ub] = sym.dims[d];
      dims.push_back(sym.dims_const ? Triplet(lb, ub) : Triplet(1, 1 << 20));
    }
  }
  return Rsd(std::move(dims));
}

}  // namespace

ProcSummary compute_summary(const BoundProgram& program, const std::string& name) {
  const Procedure* proc = program.find(name);
  if (!proc) throw CompileError({}, "compute_summary: unknown procedure " + name);
  const SymbolTable& st = program.symtab(name);

  ProcSummary sum;
  sum.proc = name;
  sum.hash = hash_procedure(*proc);
  sum.align = collect_alignments(*proc);

  SymbolicEnv base_env = SymbolicEnv::from_params(*proc, st);

  // Walk with a loop-range stack for section evaluation.
  std::function<void(const std::vector<StmtPtr>&, SymbolicEnv&)> visit =
      [&](const std::vector<StmtPtr>& stmts, SymbolicEnv& env) {
        for (const auto& s : stmts) {
          switch (s->kind) {
            case StmtKind::Assign: {
              // lhs: MOD (+ def section); subscripts are reads.
              if (s->lhs->kind == ExprKind::VarRef) {
                sum.mod.insert(s->lhs->name);
              } else {
                sum.mod.insert(s->lhs->name);
                const Symbol* sym = st.lookup(s->lhs->name);
                if (sym && sym->is_array())
                  sum.defs[s->lhs->name].add_coalescing(
                      ref_section(*s->lhs, *sym, env));
                for (const auto& sub : s->lhs->args)
                  walk_expr(*sub, [&](const Expr& e) {
                    if (e.kind == ExprKind::VarRef) sum.ref.insert(e.name);
                  });
              }
              walk_expr(*s->rhs, [&](const Expr& e) {
                if (e.kind == ExprKind::VarRef) sum.ref.insert(e.name);
                if (e.kind == ExprKind::ArrayRef) {
                  sum.ref.insert(e.name);
                  const Symbol* sym = st.lookup(e.name);
                  if (sym && sym->is_array())
                    sum.uses[e.name].add_coalescing(ref_section(e, *sym, env));
                }
              });
              // Overlap offsets: rhs subscript constant offsets relative to
              // the lhs subscript in the same dimension (Fig. 13).
              if (s->lhs->kind == ExprKind::ArrayRef) {
                walk_expr(*s->rhs, [&](const Expr& e) {
                  if (e.kind != ExprKind::ArrayRef) return;
                  const Symbol* sym = st.lookup(e.name);
                  if (!sym || !sym->is_array()) return;
                  OverlapOffsets& ov = sum.overlaps[e.name];
                  ov.ensure_rank(sym->rank());
                  for (size_t d = 0; d < e.args.size() &&
                                     d < static_cast<size_t>(sym->rank());
                       ++d) {
                    auto rf = extract_affine(*e.args[d], env.consts);
                    if (!rf) continue;
                    int64_t rel = rf->konst;
                    if (e.name == s->lhs->name && d < s->lhs->args.size()) {
                      auto lf = extract_affine(*s->lhs->args[d], env.consts);
                      if (lf && (*rf - *lf).is_constant())
                        rel = (*rf - *lf).konst;
                      else if (!lf)
                        continue;
                    } else if (!rf->vars().empty()) {
                      // Offset relative to the loop variable's position:
                      // keep the constant addend.
                    } else {
                      continue;  // pure constant subscript: not an overlap
                    }
                    if (rel > 0)
                      ov.pos[d] = std::max(ov.pos[d], rel);
                    else if (rel < 0)
                      ov.neg[d] = std::max(ov.neg[d], -rel);
                  }
                });
              }
              break;
            }
            case StmtKind::Call: {
              for (const auto& a : s->call_args)
                walk_expr(*a, [&](const Expr& e) {
                  if (e.kind == ExprKind::VarRef || e.kind == ExprKind::ArrayRef)
                    sum.ref.insert(e.name);
                });
              break;
            }
            case StmtKind::If: {
              walk_expr(*s->cond, [&](const Expr& e) {
                if (e.kind == ExprKind::VarRef || e.kind == ExprKind::ArrayRef)
                  sum.ref.insert(e.name);
              });
              visit(s->then_body, env);
              visit(s->else_body, env);
              break;
            }
            case StmtKind::Do: {
              sum.mod.insert(s->loop_var);
              for (const Expr* b : {s->lb.get(), s->ub.get(), s->step.get()}) {
                if (!b) continue;
                walk_expr(*b, [&](const Expr& e) {
                  if (e.kind == ExprKind::VarRef) sum.ref.insert(e.name);
                });
              }
              auto lb = eval_int(*s->lb, env);
              auto ub = eval_int(*s->ub, env);
              auto stp = s->step ? eval_int(*s->step, env)
                                 : std::optional<int64_t>(1);
              SymbolicEnv inner = env;
              if (lb && ub && stp && *stp > 0)
                inner.ranges[s->loop_var] = Triplet(*lb, *ub, *stp);
              else
                inner.ranges.erase(s->loop_var);
              visit(s->body, inner);
              break;
            }
            case StmtKind::Distribute:
              sum.distribute_stmts.push_back(s.get());
              break;
            default:
              break;
          }
        }
      };
  visit(proc->body, base_env);

  // Dynamic data decomposition: any DISTRIBUTE that is *not* part of the
  // initial straight-line prologue redefines a decomposition mid-flight.
  // A simpler sound test used here: a procedure that has callers (i.e. a
  // subroutine) redistributing anything, or a DISTRIBUTE preceded by any
  // executable statement.
  bool seen_exec = false;
  for (const auto& s : proc->body) {
    if (s->kind == StmtKind::Distribute && seen_exec) sum.has_dynamic_decomp = true;
    if (s->kind != StmtKind::Align && s->kind != StmtKind::Distribute)
      seen_exec = true;
  }
  if (!proc->is_program && !sum.distribute_stmts.empty())
    sum.has_dynamic_decomp = true;

  // LocalReaching at each call site (Fig. 6, local analysis phase): use the
  // point-wise reaching solution with ⊤ kept explicit.
  auto reaching = compute_local_reaching(program, *proc, {});
  walk_stmts(proc->body, [&](const Stmt& s) {
    if (s.kind != StmtKind::Call) return;
    LocalReachingEntry entry;
    entry.call_stmt = &s;
    entry.callee = s.callee;
    auto it = reaching.find(&s);
    if (it != reaching.end()) {
      // Record reaching specs for array actuals and all global arrays.
      auto record = [&](const std::string& var) {
        auto vit = it->second.find(var);
        if (vit != it->second.end()) entry.reaching[var] = vit->second;
      };
      for (const auto& a : s.call_args)
        if (a->kind == ExprKind::VarRef) {
          const Symbol* sym = st.lookup(a->name);
          if (sym && sym->is_array()) record(a->name);
        }
      for (const std::string& arr : st.array_names()) {
        const Symbol* sym = st.lookup(arr);
        if (sym && sym->is_global()) record(arr);
      }
    }
    sum.local_reaching.push_back(std::move(entry));
  });

  return sum;
}

void compute_summaries_into(const BoundProgram& program,
                            const std::vector<std::string>& names,
                            std::map<std::string, ProcSummary>& out,
                            ThreadPool* pool, IpaSummaryCache* cache,
                            SummaryPhaseStats* stats) {
  std::vector<ProcSummary> slots(names.size());
  std::vector<char> from_cache(names.size(), 0);
  auto one = [&](size_t i) {
    const Procedure* proc = program.find(names[i]);
    if (!proc)
      throw CompileError({}, "compute_summaries: unknown procedure " + names[i]);
    if (cache) {
      uint64_t h = hash_procedure(*proc);
      if (auto hit = cache->lookup(h, *proc)) {
        slots[i] = std::move(*hit);
        from_cache[i] = 1;
        return;
      }
      slots[i] = compute_summary(program, names[i]);
      cache->insert(h, *proc, slots[i]);
      return;
    }
    slots[i] = compute_summary(program, names[i]);
  };
  if (pool) {
    pool->parallel_for(names.size(), one);
  } else {
    for (size_t i = 0; i < names.size(); ++i) one(i);
  }
  // Merge in deterministic name order; results are per-procedure pure, so
  // the map content is identical for every schedule.
  for (size_t i = 0; i < names.size(); ++i) {
    out[names[i]] = std::move(slots[i]);
    if (stats) ++(from_cache[i] ? stats->cached : stats->computed);
  }
}

std::map<std::string, ProcSummary> compute_all_summaries(
    const BoundProgram& program, ThreadPool* pool, IpaSummaryCache* cache,
    SummaryPhaseStats* stats) {
  std::vector<std::string> names;
  names.reserve(program.ast.procedures.size());
  for (const auto& proc : program.ast.procedures) names.push_back(proc->name);
  std::map<std::string, ProcSummary> out;
  compute_summaries_into(program, names, out, pool, cache, stats);
  return out;
}

std::map<std::string, ProcSummary> compute_all_summaries(
    const BoundProgram& program) {
  return compute_all_summaries(program, nullptr, nullptr, nullptr);
}

}  // namespace fortd
