#include "ipa/recompilation.hpp"

namespace fortd {

namespace {

constexpr uint64_t kFnvPrime = 1099511628211ull;

void mix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_str(uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  mix(h, s.size());
}

uint64_t hash_reaching(const std::map<std::string, std::set<DecompSpec>>& r) {
  uint64_t h = 1469598103934665603ull;
  for (const auto& [var, specs] : r) {
    mix_str(h, var);
    for (const auto& spec : specs) mix_str(h, spec.str());
  }
  return h;
}

uint64_t hash_interface(const std::string& proc, const IpaContext& ctx) {
  uint64_t h = 1469598103934665603ull;
  auto mixset = [&](const std::map<std::string, std::set<std::string>>& m) {
    auto it = m.find(proc);
    if (it == m.end()) return;
    for (const auto& v : it->second) mix_str(h, v);
    mix(h, it->second.size());
  };
  mixset(ctx.effects.gmod);
  mixset(ctx.effects.gref);
  auto mixsections = [&](const std::map<std::string, std::map<std::string, RsdList>>& m) {
    auto it = m.find(proc);
    if (it == m.end()) return;
    for (const auto& [var, list] : it->second) {
      mix_str(h, var);
      mix_str(h, list.str());
    }
  };
  mixsections(ctx.effects.gdefs);
  mixsections(ctx.effects.guses);
  return h;
}

}  // namespace

uint64_t hash_codegen_inputs(const std::string& proc, const IpaContext& ctx,
                             const OverlapEstimates& overlaps) {
  uint64_t h = 1469598103934665603ull;
  // Reaching decompositions consumed by this procedure.
  auto rit = ctx.reaching.reaching.find(proc);
  if (rit != ctx.reaching.reaching.end()) mix(h, hash_reaching(rit->second));
  // Overlap estimates consumed.
  auto oit = overlaps.estimates.find(proc);
  if (oit != overlaps.estimates.end())
    for (const auto& [var, ov] : oit->second) {
      mix_str(h, var);
      mix_str(h, ov.str());
    }
  // Callee interface summaries consumed (bottom-up facts).
  for (const CallSiteInfo* site : ctx.acg.calls_from(proc)) {
    mix_str(h, site->callee);
    mix(h, hash_interface(site->callee, ctx));
  }
  // Run-time fallback status changes code shape too.
  mix(h, ctx.runtime_fallback.count(proc));
  // May-alias environment (§6.4): a changed pair set widens side effects
  // and splits cloning partitions, so it must force recompilation. The
  // entry hash is a pure function of the canonical pair set — schedule-
  // and jobs-invariant like every other input above.
  mix(h, hash_alias_entry(ctx.alias, proc));
  return h;
}

CompilationRecord make_compilation_record(const BoundProgram& program,
                                          const IpaContext& ctx,
                                          const OverlapEstimates& overlaps) {
  CompilationRecord rec;
  for (const auto& proc : program.ast.procedures) {
    const std::string& name = proc->name;
    auto sit = ctx.summaries.find(name);
    rec.proc_hashes[name] =
        sit != ctx.summaries.end() ? sit->second.hash : hash_procedure(*proc);
    rec.input_hashes[name] = hash_codegen_inputs(name, ctx, overlaps);
  }
  return rec;
}

std::set<std::string> procedures_to_recompile(const CompilationRecord& before,
                                              const CompilationRecord& after) {
  std::set<std::string> out;
  for (const auto& [name, hash] : after.proc_hashes) {
    auto bit = before.proc_hashes.find(name);
    if (bit == before.proc_hashes.end() || bit->second != hash) {
      out.insert(name);
      continue;
    }
    auto ait = after.input_hashes.find(name);
    auto bif = before.input_hashes.find(name);
    if (ait != after.input_hashes.end() &&
        (bif == before.input_hashes.end() || bif->second != ait->second))
      out.insert(name);
  }
  return out;
}

}  // namespace fortd
