#include "ipa/cloning.hpp"

#include <algorithm>

#include "ipa/summary_cache.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

namespace {

/// Canonical key for a translated+filtered reaching set, used to partition
/// call sites (call sites providing equal decompositions share a clone).
std::string partition_key(
    const std::map<std::string, std::set<DecompSpec>>& reaching) {
  std::string key;
  for (const auto& [var, specs] : reaching) {
    key += var + "=";
    for (const auto& spec : specs) key += spec.str() + "|";
    key += ";";
  }
  return key;
}

/// Translate the resolved reaching sets at a call site into the callee's
/// name space, keeping only variables in `appear`. With `aliases` (the
/// callee's may-alias pairs), the specs of each pair's members are
/// unioned: aliased names share storage, so a partition key must not
/// distinguish which member a decomposition arrived through.
std::map<std::string, std::set<DecompSpec>> translate_and_filter(
    const std::map<std::string, std::set<DecompSpec>>& at_call,
    const Procedure& callee, const CallSiteInfo& site,
    const std::set<std::string>& appear,
    const std::set<AliasPair>* aliases = nullptr) {
  std::map<std::string, std::set<DecompSpec>> out;
  auto add = [&](const std::string& callee_var, const std::set<DecompSpec>& specs) {
    if (!appear.count(callee_var)) return;  // Filter (Fig. 8)
    for (const auto& spec : specs)
      if (!spec.is_top) out[callee_var].insert(spec);
  };
  for (size_t f = 0; f < callee.formals.size() && f < site.actuals.size(); ++f) {
    const Expr* actual = site.actuals[f];
    if (actual->kind != ExprKind::VarRef) continue;
    auto it = at_call.find(actual->name);
    if (it != at_call.end()) add(callee.formals[f], it->second);
  }
  for (const auto& [var, specs] : at_call) {
    if (callee.formal_index(var) >= 0) continue;
    add(var, specs);
  }
  if (aliases) {
    for (const AliasPair& p : *aliases) {
      auto ia = out.find(p.a);
      auto ib = out.find(p.b);
      if (ia == out.end() && ib == out.end()) continue;
      std::set<DecompSpec> merged;
      if (ia != out.end()) merged.insert(ia->second.begin(), ia->second.end());
      if (ib != out.end()) merged.insert(ib->second.begin(), ib->second.end());
      // Only widen names that passed the Filter — don't grow the key with
      // variables the callee never accesses.
      if (ia != out.end()) ia->second = merged;
      if (ib != out.end()) ib->second = std::move(merged);
    }
  }
  return out;
}

void retarget_call(BoundProgram& program, const std::string& caller,
                   const Stmt* call_stmt, const std::string& new_callee) {
  Procedure* proc = program.find(caller);
  walk_stmts(proc->body, [&](Stmt& s) {
    if (&s == call_stmt) s.callee = new_callee;
  });
}

}  // namespace

int apply_cloning_pass(BoundProgram& program, IpaContext& ctx,
                       const IpaOptions& options, CloneDelta* delta) {
  if (!options.enable_cloning) return 0;
  int clones = 0;

  // Visit in topological order so callers' reaching sets are final before
  // their callees are partitioned.
  for (const std::string& name : ctx.acg.topological_order()) {
    const Procedure* proc = program.find(name);
    if (!proc || proc->is_program) continue;
    auto sites = ctx.acg.calls_to(name);
    if (sites.size() < 2) continue;

    std::set<std::string> appear = ctx.effects.appear(name, program);
    std::map<std::string, std::vector<const CallSiteInfo*>> partitions;
    std::vector<std::string> order;  // deterministic partition order
    for (const CallSiteInfo* site : sites) {
      const auto& caller_at_stmt = ctx.reaching.at_stmt.at(site->caller);
      auto sit = caller_at_stmt.find(site->stmt);
      std::map<std::string, std::set<DecompSpec>> translated;
      if (sit != caller_at_stmt.end())
        translated = translate_and_filter(sit->second, *proc, *site, appear,
                                          ctx.alias.of(name));
      std::string key = partition_key(translated);
      if (!partitions.count(key)) order.push_back(key);
      partitions[key].push_back(site);
    }
    if (partitions.size() < 2) continue;

    // Growth threshold check (§5.2): fall back to run-time resolution.
    if (static_cast<int>(program.ast.procedures.size() + partitions.size() - 1) >
        options.max_procedures) {
      ctx.runtime_fallback.insert(name);
      continue;
    }

    // The first partition keeps the original procedure; each further
    // partition gets a clone.
    for (size_t i = 1; i < order.size(); ++i) {
      std::string clone_name;
      for (int suffix = static_cast<int>(i) + 1;; ++suffix) {
        clone_name = name + "$" + std::to_string(suffix);
        if (!program.find(clone_name)) break;
      }
      program.add_procedure(proc->clone_as(clone_name));
      std::string origin = name;
      auto oit = ctx.clone_origin.find(name);
      if (oit != ctx.clone_origin.end()) origin = oit->second;
      ctx.clone_origin[clone_name] = origin;
      for (const CallSiteInfo* site : partitions[order[i]]) {
        retarget_call(program, site->caller, site->stmt, clone_name);
        if (delta) delta->retargeted_callers.insert(site->caller);
      }
      if (delta) {
        delta->new_clones.push_back(clone_name);
        delta->cloned_origins.insert(name);
      }
      ++clones;
      // `proc` pointer may have been invalidated by add_procedure's
      // vector growth; refetch.
      proc = program.find(name);
    }
  }
  ctx.clones_created += clones;
  return clones;
}

IpaContext run_ipa(BoundProgram& program, const IpaOptions& options,
                   ThreadPool* pool, IpaSummaryCache* summary_cache) {
  IpaContext ctx;
  CloneDelta delta;
  bool have_delta = false;  // false on the first round: everything is new
  for (int round = 0; round < 64; ++round) {
    ++ctx.stats.rounds;
    ctx.acg = AugmentedCallGraph::build(program);
    const int n = static_cast<int>(program.ast.procedures.size());
    SummaryPhaseStats sum_stats;

    // May-alias pairs depend only on the ACG (sites + symbol tables), so a
    // full recompute per round is cheap; the previous round's map is kept
    // to seed the incremental side-effect dirty set below.
    AliasMap prev_alias = std::move(ctx.alias);
    ctx.alias = compute_alias_map(program, ctx.acg, pool, options.scheduler,
                                  &ctx.stats.sched);

    if (!have_delta || !options.incremental) {
      ctx.summaries =
          compute_all_summaries(program, pool, summary_cache, &sum_stats);
      std::set<std::string> all;
      for (const auto& proc : program.ast.procedures) all.insert(proc->name);
      ctx.effects = SideEffects{};
      update_side_effects(program, ctx.acg, ctx.summaries, all, ctx.effects,
                          pool, options.scheduler, &ctx.stats.sched,
                          &ctx.alias);
      ctx.reaching = ReachingDecomps{};
      update_reaching_decomps(program, ctx.acg, ctx.summaries, all,
                              ctx.reaching, pool, options.scheduler,
                              &ctx.stats.sched);
    } else {
      ++ctx.stats.rounds_incremental;
      // Summaries: only bodies of new clones and retargeted callers
      // changed (retargeting rewrites `s.callee`, so their hashes and
      // LocalReaching entries differ); everything else is carried over.
      // Statement pointers stay valid across rounds — statements are
      // individually heap-allocated and cloning only appends procedures.
      std::set<std::string> dirty_sum = delta.retargeted_callers;
      dirty_sum.insert(delta.new_clones.begin(), delta.new_clones.end());
      std::vector<std::string> names;  // deterministic program order
      for (const auto& proc : program.ast.procedures)
        if (dirty_sum.count(proc->name)) names.push_back(proc->name);
      compute_summaries_into(program, names, ctx.summaries, pool,
                             summary_cache, &sum_stats);
      ctx.stats.summaries_reused += n - static_cast<int>(names.size());

      // Side effects flow bottom-up: close the dirty set upward (any
      // caller of a dirty procedure is dirty). A changed alias entry also
      // dirties its procedure — widening reads the pair set, so carrying
      // the old entry over would bake in stale pairs.
      std::set<std::string> dirty_fx = dirty_sum;
      for (const auto& proc : program.ast.procedures) {
        const std::set<AliasPair>* now = ctx.alias.of(proc->name);
        const std::set<AliasPair>* was = prev_alias.of(proc->name);
        if ((now == nullptr) != (was == nullptr) ||
            (now && was && *now != *was))
          dirty_fx.insert(proc->name);
      }
      for (const std::string& nm : ctx.acg.reverse_topological_order()) {
        if (dirty_fx.count(nm)) continue;
        for (const CallSiteInfo* site : ctx.acg.calls_from(nm))
          if (dirty_fx.count(site->callee)) {
            dirty_fx.insert(nm);
            break;
          }
      }
      ctx.stats.effects_reused += n - static_cast<int>(dirty_fx.size());
      update_side_effects(program, ctx.acg, ctx.summaries, dirty_fx,
                          ctx.effects, pool, options.scheduler,
                          &ctx.stats.sched, &ctx.alias);

      // Reaching flows top-down: seed with the text-changed procedures
      // plus originals that lost sites to a clone (the retargeted edge is
      // *gone* from the new ACG, so the origin is not a callee of any
      // recomputed caller and must be forced to re-pull its shrunken
      // set); the propagation's change cutoff decides how far each edit
      // travels from there.
      std::set<std::string> dirty_rd = dirty_sum;
      dirty_rd.insert(delta.cloned_origins.begin(),
                      delta.cloned_origins.end());
      ctx.stats.reaching_reused +=
          n - update_reaching_decomps(program, ctx.acg, ctx.summaries,
                                      dirty_rd, ctx.reaching, pool,
                                      options.scheduler, &ctx.stats.sched);
    }
    ctx.stats.summaries_computed += sum_stats.computed;
    ctx.stats.summaries_cached += sum_stats.cached;

    delta = CloneDelta{};
    if (apply_cloning_pass(program, ctx, options, &delta) == 0) break;
    have_delta = true;
  }
  return ctx;
}

}  // namespace fortd
