// Interprocedural reaching decompositions — the algorithm of Fig. 6.
//
// Fortran D scoping makes this a one-top-down-pass problem: a procedure's
// reaching decompositions depend only on control flow in its *callers*
// (decomposition changes in callees are undone on return). Processing the
// ACG in topological order, each procedure's LocalReaching sets are
// resolved (⊤ expanded through Reaching(P)) and translated to its callees.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ipa/call_graph.hpp"
#include "ipa/summaries.hpp"
#include "support/task_graph.hpp"

namespace fortd {

struct ReachingDecomps {
  /// Reaching(P): decompositions reaching procedure P from its callers,
  /// keyed by formal-parameter / global variable name.
  std::map<std::string, std::map<std::string, std::set<DecompSpec>>> reaching;

  /// Point-wise resolved solution: per procedure, per statement, the specs
  /// reaching each array (⊤ already expanded through Reaching).
  std::map<std::string,
           std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>>>
      at_stmt;

  /// All specs that reach any statement of `proc` for `var`.
  std::set<DecompSpec> specs_for(const std::string& proc,
                                 const std::string& var) const;

  /// The unique decomposition of `var` throughout `proc`, when there is
  /// exactly one (the common case after cloning). nullopt when the
  /// variable is replicated (no decomposition) or has several specs.
  std::optional<DecompSpec> unique_spec(const std::string& proc,
                                        const std::string& var) const;

  /// True when more than one distinct spec reaches `var` in `proc` —
  /// requires cloning or run-time resolution.
  bool has_conflict(const std::string& proc, const std::string& var) const;

  /// Specs reaching `var` at a specific statement.
  std::set<DecompSpec> specs_at(const std::string& proc, const Stmt* stmt,
                                const std::string& var) const;
};

class ThreadPool;

/// Reaching(P) pulled from the already-resolved `at_stmt` entries of P's
/// callers: the union over every call site targeting P of the translated
/// (formal- and global-matched) specs at that site. Pure read of `rd`.
std::map<std::string, std::set<DecompSpec>> pull_reaching(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const ReachingDecomps& rd, const std::string& callee);

/// Recompute Reaching and at_stmt top-down over the caller-before-callee
/// dependency order (pending procedures run concurrently on `pool` when
/// given — work-stealing by default, depth levels with barriers under
/// Scheduler::Wavefront; identical maps either way), reusing everything
/// else already in `rd`.
///
/// `dirty` seeds the procedures whose *text* changed (they are always
/// recomputed). Caller changes propagate with a change cutoff: a callee of
/// a recomputed caller is re-pulled, and only recomputed when the pulled
/// Reaching set differs from its stored entry — Reaching and at_stmt are
/// pure functions of (pulled input, procedure text), so an equal pull with
/// unchanged text proves the stored solution still holds. Returns the
/// number of procedures actually recomputed.
int update_reaching_decomps(const BoundProgram& program,
                            const AugmentedCallGraph& acg,
                            const std::map<std::string, ProcSummary>& summaries,
                            const std::set<std::string>& dirty,
                            ReachingDecomps& rd, ThreadPool* pool = nullptr,
                            Scheduler scheduler = Scheduler::WorkStealing,
                            TaskGraphStats* sched_stats = nullptr);

ReachingDecomps compute_reaching_decomps(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries,
    ThreadPool* pool = nullptr,
    Scheduler scheduler = Scheduler::WorkStealing);

}  // namespace fortd
