#include "ipa/inlining.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "ipa/call_graph.hpp"

namespace fortd {

namespace {

int g_inline_counter = 0;

/// Rewrite names in an expression tree: identifiers found in `subst` are
/// replaced by clones of the mapped expression (VarRef) or renamed in
/// place (ArrayRef bases keep their subscripts).
void rewrite_expr(ExprPtr& e, const std::map<std::string, ExprPtr>& subst) {
  for (auto& a : e->args) rewrite_expr(a, subst);
  if (e->kind == ExprKind::VarRef) {
    auto it = subst.find(e->name);
    if (it != subst.end()) {
      std::vector<ExprPtr> saved_args = std::move(e->args);
      ExprPtr repl = it->second->clone();
      *e = std::move(*repl);
      e->args = std::move(saved_args);
    }
  } else if (e->kind == ExprKind::ArrayRef) {
    auto it = subst.find(e->name);
    if (it != subst.end() && it->second->kind == ExprKind::VarRef)
      e->name = it->second->name;
  }
}

void rewrite_stmt(Stmt& s, const std::map<std::string, ExprPtr>& subst) {
  auto rw = [&](ExprPtr& e) {
    if (e) rewrite_expr(e, subst);
  };
  rw(s.lhs);
  rw(s.rhs);
  rw(s.cond);
  rw(s.lb);
  rw(s.ub);
  rw(s.step);
  rw(s.peer);
  for (auto& a : s.call_args) rewrite_expr(a, subst);
  auto rename = [&](std::string& name) {
    auto it = subst.find(name);
    if (it != subst.end() && it->second->kind == ExprKind::VarRef)
      name = it->second->name;
  };
  rename(s.loop_var);
  rename(s.align_array);
  rename(s.align_target);
  rename(s.dist_target);
  rename(s.msg_array);
  for (auto& inner : s.then_body) rewrite_stmt(*inner, subst);
  for (auto& inner : s.else_body) rewrite_stmt(*inner, subst);
  for (auto& inner : s.body) rewrite_stmt(*inner, subst);
}

/// Does the statement list contain a RETURN anywhere but as the very last
/// top-level statement?
bool has_early_return(const std::vector<StmtPtr>& body) {
  bool found = false;
  for (size_t i = 0; i < body.size(); ++i) {
    const Stmt& s = *body[i];
    if (s.kind == StmtKind::Return && i + 1 < body.size()) return true;
    std::function<void(const Stmt&)> scan = [&](const Stmt& t) {
      if (t.kind == StmtKind::Return) found = true;
      for (const auto& inner : t.then_body) scan(*inner);
      for (const auto& inner : t.else_body) scan(*inner);
      for (const auto& inner : t.body) scan(*inner);
    };
    if (s.kind != StmtKind::Return) scan(s);
  }
  return found;
}

}  // namespace

bool inline_call(BoundProgram& program, const std::string& caller_name,
                 const Stmt* call_stmt, InlineStats* stats) {
  Procedure* caller = program.find(caller_name);
  if (!caller) return false;
  const Procedure* callee = program.find(call_stmt->callee);
  if (!callee || callee->is_program) return false;
  if (has_early_return(callee->body)) return false;

  const int uid = ++g_inline_counter;
  std::map<std::string, ExprPtr> subst;
  std::vector<StmtPtr> prologue;

  // Formals.
  for (size_t f = 0; f < callee->formals.size(); ++f) {
    const std::string& formal = callee->formals[f];
    if (f >= call_stmt->call_args.size()) return false;
    const Expr& actual = *call_stmt->call_args[f];
    if (actual.kind == ExprKind::VarRef) {
      subst[formal] = actual.clone();
    } else {
      // Expression actual: copy-in temporary.
      std::string temp = "inl$" + std::to_string(uid) + "$" + formal;
      prologue.push_back(
          Stmt::make_assign(Expr::make_var(temp), actual.clone()));
      subst[formal] = Expr::make_var(temp);
      VarDecl decl;
      decl.name = temp;
      decl.type = ElemType::Real;
      caller->decls.push_back(std::move(decl));
    }
  }

  // PARAMETER constants fold to literals.
  {
    const SymbolTable& st = program.symtab(callee->name);
    for (const auto& [name, sym] : st.all())
      if (sym.kind == SymbolKind::Param)
        subst[name] = Expr::make_int(sym.param_value);
  }

  // COMMON variables keep their names; everything else local renames.
  std::set<std::string> commons;
  for (const auto& blk : callee->commons)
    for (const auto& v : blk.vars) commons.insert(v);

  for (const auto& decl : callee->decls) {
    if (decl.is_decomposition) continue;
    if (subst.count(decl.name)) continue;  // formal or parameter
    if (commons.count(decl.name)) continue;
    std::string fresh = "inl$" + std::to_string(uid) + "$" + decl.name;
    subst[decl.name] = Expr::make_var(fresh);
    VarDecl copy = decl.clone();
    copy.name = fresh;
    // Dimension expressions may reference formals/parameters.
    for (auto& dim : copy.dims) {
      if (dim.lb) rewrite_expr(dim.lb, subst);
      rewrite_expr(dim.ub, subst);
    }
    caller->decls.push_back(std::move(copy));
  }
  // Implicit locals (undeclared loop variables) rename too.
  walk_stmts(callee->body, [&](const Stmt& s) {
    if (s.kind == StmtKind::Do && !subst.count(s.loop_var) &&
        !commons.count(s.loop_var))
      subst[s.loop_var] =
          Expr::make_var("inl$" + std::to_string(uid) + "$" + s.loop_var);
  });

  // Clone + rewrite the body.
  std::vector<StmtPtr> body = clone_stmts(callee->body);
  if (!body.empty() && body.back()->kind == StmtKind::Return) body.pop_back();
  for (auto& s : body) rewrite_stmt(*s, subst);
  // Cloned statements carry the callee's ids, which may collide with the
  // caller's — reset them so fresh ids are assigned below.
  walk_stmts(body, [](Stmt& s) { s.id = -1; });

  // Splice into the caller at the call site.
  bool spliced = false;
  std::function<void(std::vector<StmtPtr>&)> splice =
      [&](std::vector<StmtPtr>& stmts) {
        for (size_t i = 0; i < stmts.size(); ++i) {
          if (stmts[i].get() == call_stmt) {
            std::vector<StmtPtr> seq;
            for (auto& s : prologue) seq.push_back(std::move(s));
            for (auto& s : body) seq.push_back(std::move(s));
            if (stats) {
              ++stats->calls_inlined;
              stats->statements_added += static_cast<int>(seq.size());
            }
            stmts.erase(stmts.begin() + static_cast<long>(i));
            for (size_t k = 0; k < seq.size(); ++k)
              stmts.insert(stmts.begin() + static_cast<long>(i + k),
                           std::move(seq[k]));
            spliced = true;
            return;
          }
          if (spliced) return;
          splice(stmts[i]->then_body);
          splice(stmts[i]->else_body);
          splice(stmts[i]->body);
        }
      };
  splice(caller->body);
  if (!spliced) return false;

  // Fresh statement ids keep dataflow facts unique.
  walk_stmts(caller->body, [&](Stmt& s) {
    if (s.id < 0) s.id = caller->next_stmt_id++;
  });
  program.rebind(caller_name);
  return true;
}

InlineStats inline_all(BoundProgram& program) {
  InlineStats stats;
  // Guard against recursion by bounding on the acyclic call graph.
  AugmentedCallGraph::build(program);
  for (int round = 0; round < 1024; ++round) {
    const Stmt* next_call = nullptr;
    std::string in_proc;
    for (const auto& proc : program.ast.procedures) {
      walk_stmts(proc->body, [&](const Stmt& s) {
        if (next_call || s.kind != StmtKind::Call) return;
        if (program.find(s.callee)) {
          next_call = &s;
          in_proc = proc->name;
        }
      });
      if (next_call) break;
    }
    if (!next_call) break;
    if (!inline_call(program, in_proc, next_call, &stats))
      throw CompileError({}, "inline_all: could not inline call to '" +
                                 next_call->callee + "'");
  }
  // Drop now-unreachable subroutines.
  program.ast.procedures.erase(
      std::remove_if(program.ast.procedures.begin(),
                     program.ast.procedures.end(),
                     [](const std::unique_ptr<Procedure>& p) {
                       return !p->is_program;
                     }),
      program.ast.procedures.end());
  return stats;
}

}  // namespace fortd
