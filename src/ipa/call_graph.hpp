// The augmented call graph (ACG) of §5.1 / Fig. 5: procedures and call
// sites plus loop nodes and nesting edges, with the annotations the
// Fortran D compiler needs — which loops enclose each call site, and which
// formal parameters receive loop index variables (with their ranges).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/symbolic.hpp"
#include "ir/program.hpp"

namespace fortd {

/// A loop enclosing a call site, with its constant-evaluated range when
/// available.
struct AcgLoop {
  const Stmt* stmt = nullptr;  // the DO statement in the caller
  std::string var;
  std::optional<Triplet> range;  // nullopt when bounds are not constant
};

struct CallSiteInfo {
  int site_id = -1;
  std::string caller;
  std::string callee;
  const Stmt* stmt = nullptr;  // the CALL statement (points into caller AST)
  std::vector<const Expr*> actuals;
  std::vector<AcgLoop> enclosing_loops;  // outermost first

  /// For each formal index of the callee: if the actual is a loop index
  /// variable of an enclosing loop, its range annotation (Fig. 5's
  /// "formal i iterates 1:100:1").
  std::map<int, Triplet> formal_loop_ranges;
};

class AugmentedCallGraph {
public:
  /// Build the ACG. Throws CompileError on recursion (the single-pass
  /// compilation strategy requires an acyclic call graph) or on calls to
  /// undefined procedures that are not treated as intrinsics.
  static AugmentedCallGraph build(const BoundProgram& program);

  const std::vector<CallSiteInfo>& call_sites() const { return sites_; }
  std::vector<const CallSiteInfo*> calls_to(const std::string& callee) const;
  std::vector<const CallSiteInfo*> calls_from(const std::string& caller) const;
  const CallSiteInfo* site_for(const Stmt* call_stmt) const;

  /// Procedure names in topological order (callers before callees).
  const std::vector<std::string>& topological_order() const { return topo_; }
  /// Reverse topological order (callees before callers) — the order of
  /// interprocedural code generation.
  std::vector<std::string> reverse_topological_order() const;

  /// Index of `name` in the program's procedure list (the node id used by
  /// the index-based orders below), or -1 for unknown procedures.
  int procedure_index(const std::string& name) const;
  /// topological_order() as procedure indices — the hot-path form: code
  /// generation indexes `program.ast.procedures` directly instead of
  /// re-resolving names.
  const std::vector<int>& topological_indices() const { return topo_indices_; }
  std::vector<int> reverse_topological_indices() const;

  /// Wavefront partition of the reverse topological order: level 0 holds
  /// the leaves, and every procedure sits one level above its deepest
  /// callee, so all of a level's callees are fully generated before the
  /// level starts. Procedures within a level are mutually independent and
  /// listed in reverse topological order (deterministic). Concatenating
  /// the levels yields a valid reverse topological order.
  std::vector<std::vector<int>> wavefront_levels() const;

  /// Dual partition for top-down phases (reaching-decomposition
  /// propagation): level 0 holds the roots (procedures with no callers),
  /// and every procedure sits one level below its deepest caller, so all
  /// of a level's callers are fully processed before the level starts.
  /// Procedures within a level are listed in topological order
  /// (deterministic); concatenating the levels yields a valid topological
  /// order.
  std::vector<std::vector<int>> top_down_levels() const;

  bool has_procedure(const std::string& name) const;

private:
  std::vector<CallSiteInfo> sites_;
  // Per-caller / per-callee indices into sites_, in site-id (source) order.
  std::map<std::string, std::vector<int>> sites_from_;
  std::map<std::string, std::vector<int>> sites_to_;
  std::vector<std::string> topo_;
  std::vector<int> topo_indices_;
  std::map<std::string, int> index_of_;
  std::map<const Stmt*, int> site_of_stmt_;
};

}  // namespace fortd
