// The augmented call graph (ACG) of §5.1 / Fig. 5: procedures and call
// sites plus loop nodes and nesting edges, with the annotations the
// Fortran D compiler needs — which loops enclose each call site, and which
// formal parameters receive loop index variables (with their ranges).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/symbolic.hpp"
#include "ir/program.hpp"

namespace fortd {

/// A loop enclosing a call site, with its constant-evaluated range when
/// available.
struct AcgLoop {
  const Stmt* stmt = nullptr;  // the DO statement in the caller
  std::string var;
  std::optional<Triplet> range;  // nullopt when bounds are not constant
};

struct CallSiteInfo {
  int site_id = -1;
  std::string caller;
  std::string callee;
  const Stmt* stmt = nullptr;  // the CALL statement (points into caller AST)
  std::vector<const Expr*> actuals;
  std::vector<AcgLoop> enclosing_loops;  // outermost first

  /// For each formal index of the callee: if the actual is a loop index
  /// variable of an enclosing loop, its range annotation (Fig. 5's
  /// "formal i iterates 1:100:1").
  std::map<int, Triplet> formal_loop_ranges;
};

class AugmentedCallGraph {
public:
  /// Build the ACG. Throws CompileError on recursion (the single-pass
  /// compilation strategy requires an acyclic call graph) or on calls to
  /// undefined procedures that are not treated as intrinsics.
  static AugmentedCallGraph build(const BoundProgram& program);

  const std::vector<CallSiteInfo>& call_sites() const { return sites_; }
  std::vector<const CallSiteInfo*> calls_to(const std::string& callee) const;
  std::vector<const CallSiteInfo*> calls_from(const std::string& caller) const;
  const CallSiteInfo* site_for(const Stmt* call_stmt) const;

  /// Procedure names in topological order (callers before callees).
  const std::vector<std::string>& topological_order() const { return topo_; }
  /// Reverse topological order (callees before callers) — the order of
  /// interprocedural code generation.
  std::vector<std::string> reverse_topological_order() const;

  bool has_procedure(const std::string& name) const;

private:
  std::vector<CallSiteInfo> sites_;
  std::vector<std::string> topo_;
  std::map<const Stmt*, int> site_of_stmt_;
};

}  // namespace fortd
