// A content-addressed cache of per-procedure summaries, the IPA analogue
// of the codegen CompilationCache: §8's observation is that local analysis
// is a pure function of the procedure text, so its result can be keyed by
// the structural hash (`hash_procedure`) and reused across compile()
// calls whenever the procedure is unchanged.
//
// ProcSummary holds `const Stmt*` pointers into the AST it was computed
// from (distribute_stmts, local_reaching[].call_stmt), which dangle for
// any later AST. Entries therefore store those pointers as *pre-order
// statement indices* (the deterministic walk_stmts order) and lookup()
// rehydrates them against the current procedure body; a statement-count
// mismatch rejects the entry.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>

#include "ipa/summaries.hpp"

namespace fortd {

class IpaSummaryCache {
public:
  /// Return the cached summary for `hash`, rehydrated against `proc`'s
  /// statements, or nullopt on miss. Thread-safe.
  std::optional<ProcSummary> lookup(uint64_t hash, const Procedure& proc);

  /// Store `summary` (computed from `proc`) under `hash`. Thread-safe.
  void insert(uint64_t hash, const Procedure& proc, const ProcSummary& summary);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  void clear();

private:
  struct Entry {
    ProcSummary summary;  // Stmt pointers nulled; see indices below
    std::vector<size_t> distribute_idx;
    std::vector<size_t> call_idx;  // one per local_reaching entry
    size_t stmt_count = 0;
  };

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fortd
