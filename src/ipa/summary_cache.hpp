// A content-addressed cache of per-procedure summaries, the IPA analogue
// of the codegen CompilationCache: §8's observation is that local analysis
// is a pure function of the procedure text, so its result can be keyed by
// the structural hash (`hash_procedure`) and reused across compile()
// calls whenever the procedure is unchanged.
//
// ProcSummary holds `const Stmt*` pointers into the AST it was computed
// from (distribute_stmts, local_reaching[].call_stmt), which dangle for
// any later AST. Entries therefore store those pointers as *pre-order
// statement indices* (the deterministic walk_stmts order) and lookup()
// rehydrates them against the current procedure body; a statement-count
// mismatch rejects the entry.
// With a ContentStore attached (Compiler with CacheOptions.dir set) the
// cache is two-tier: memory misses consult the persistent compilation
// database (artifact kind "summary", keyed by the same hash_procedure
// digest), and inserts write through — so local analysis survives across
// compiler processes, not just compile() calls.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "ipa/summaries.hpp"

namespace fortd {

class ContentStore;

/// Artifact codec identity for the persistent tier.
extern const char kSummaryArtifactKind[];
uint64_t summary_artifact_format_hash();

class IpaSummaryCache {
public:
  /// Attach the persistent second tier (may be null to detach). Not
  /// thread-safe against concurrent lookups — call before compiling.
  void attach_store(ContentStore* store) { store_ = store; }

  /// Return the cached summary for `hash`, rehydrated against `proc`'s
  /// statements, or nullopt on miss. Thread-safe.
  std::optional<ProcSummary> lookup(uint64_t hash, const Procedure& proc);

  /// Store `summary` (computed from `proc`) under `hash`. Thread-safe.
  void insert(uint64_t hash, const Procedure& proc, const ProcSummary& summary);

  uint64_t hits() const;
  uint64_t misses() const;
  size_t size() const;
  void clear();

private:
  struct Entry {
    ProcSummary summary;  // Stmt pointers nulled; see indices below
    std::vector<size_t> distribute_idx;
    std::vector<size_t> call_idx;  // one per local_reaching entry
    size_t stmt_count = 0;
  };

  static std::vector<uint8_t> serialize_entry(const Entry& entry);
  static std::optional<Entry> deserialize_entry(
      const std::vector<uint8_t>& payload);

  /// Entry for `hash` from memory or disk (promoting a disk hit into the
  /// memory tier); accounts the miss when neither tier has it.
  std::optional<Entry> fetch(uint64_t hash);

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
  ContentStore* store_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fortd
