// Local (per-procedure) summary information, collected "at the end of an
// editing session" in the ParaScope model (§4, phase 1). Summaries are the
// only inputs interprocedural propagation needs, so a procedure body is
// examined exactly once per edit.
//
// Contents per procedure:
//   * a structural hash (drives recompilation analysis, §8),
//   * scalar/array MOD and REF sets (local effects only),
//   * array def/use sections as RSDs (interprocedural dependence, §5.4),
//   * static alignments and the executable DISTRIBUTE statements,
//   * LocalReaching decomposition sets at each call site (Fig. 6),
//   * constant overlap offsets per array dimension (Fig. 13).
#pragma once

#include <map>
#include <set>
#include <string>

#include "ipa/call_graph.hpp"
#include "ir/decomp.hpp"
#include "ir/program.hpp"
#include "ir/rsd.hpp"

namespace fortd {

/// Static alignment of an array: target decomposition and the permutation
/// align_perm[target_dim] = array_dim.
struct AlignInfo {
  std::string target;
  std::vector<int> perm;
};

/// Maximum constant subscript offsets per array dimension, relative to the
/// assignment's lhs subscript when comparable (Fig. 13's overlap offsets).
struct OverlapOffsets {
  std::vector<int64_t> pos;  // upper overlap demand per dim
  std::vector<int64_t> neg;  // lower overlap demand per dim (>= 0 values)

  void ensure_rank(int rank);
  void merge(const OverlapOffsets& o);
  bool any() const;
  std::string str() const;
};

/// Decomposition sets reaching one call site: variable -> set of specs
/// (possibly containing DecompSpec::top() for the inherited decomposition).
struct LocalReachingEntry {
  const Stmt* call_stmt = nullptr;
  std::string callee;
  std::map<std::string, std::set<DecompSpec>> reaching;
};

struct ProcSummary {
  std::string proc;
  uint64_t hash = 0;
  std::set<std::string> mod;  // variables assigned locally
  std::set<std::string> ref;  // variables read locally
  std::map<std::string, RsdList> defs;  // array sections defined locally
  std::map<std::string, RsdList> uses;  // array sections used locally
  std::map<std::string, AlignInfo> align;
  std::vector<const Stmt*> distribute_stmts;
  std::vector<LocalReachingEntry> local_reaching;
  std::map<std::string, OverlapOffsets> overlaps;
  bool has_dynamic_decomp = false;
};

/// The DecompSpec a DISTRIBUTE statement induces on a given array (either
/// the direct target or an array aligned with the target decomposition).
/// Returns nullopt when the statement does not affect the array.
std::optional<DecompSpec> spec_for_array(
    const Stmt& distribute, const std::string& array, int array_rank,
    const std::map<std::string, AlignInfo>& align);

/// Arrays affected by a DISTRIBUTE statement.
std::vector<std::string> affected_arrays(
    const Stmt& distribute, const Procedure& proc, const SymbolTable& st,
    const std::map<std::string, AlignInfo>& align);

/// Point-wise reaching decompositions inside one procedure: for every
/// statement, the specs reaching each array. `inherited` supplies the
/// expansion of ⊤ for formals/globals (empty set values keep ⊤ explicit).
std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>>
compute_local_reaching(const BoundProgram& program, const Procedure& proc,
                       const std::map<std::string, std::set<DecompSpec>>& inherited);

/// Full local analysis of one procedure.
ProcSummary compute_summary(const BoundProgram& program, const std::string& proc);

class ThreadPool;
class IpaSummaryCache;

/// Counters filled by the summary phase (see IpaStats / CompilerStats).
struct SummaryPhaseStats {
  int computed = 0;  // ran compute_summary
  int cached = 0;    // rehydrated from the IpaSummaryCache
};

/// Compute (or fetch from `cache`) summaries for `names` and store them
/// into `out`, overwriting existing entries. compute_summary is a pure
/// function of the procedure text, so the batch is embarrassingly
/// parallel on `pool`; results are independent of schedule. All of
/// `pool`, `cache`, and `stats` may be null.
void compute_summaries_into(const BoundProgram& program,
                            const std::vector<std::string>& names,
                            std::map<std::string, ProcSummary>& out,
                            ThreadPool* pool = nullptr,
                            IpaSummaryCache* cache = nullptr,
                            SummaryPhaseStats* stats = nullptr);

/// Summaries for every procedure.
std::map<std::string, ProcSummary> compute_all_summaries(
    const BoundProgram& program, ThreadPool* pool,
    IpaSummaryCache* cache = nullptr, SummaryPhaseStats* stats = nullptr);
std::map<std::string, ProcSummary> compute_all_summaries(const BoundProgram& program);

/// Structural hash of a procedure body (order-sensitive, name-sensitive).
uint64_t hash_procedure(const Procedure& proc);

}  // namespace fortd
