// Interprocedural overlap-offset estimation (Fig. 13).
//
// Overlap regions extend an array's local bounds to hold nonlocal data
// from neighboring processors. Because Fortran requires consistent array
// extents across procedures, overlap sizes must agree program-wide — the
// only interprocedural problem in the paper that is naturally
// bidirectional. The estimation algorithm keeps compilation single-pass:
// constant subscript offsets recorded during local analysis are merged
// bottom-up over the ACG, and the resulting maxima are pushed back down so
// every procedure declares the same overlap extents.
#pragma once

#include <map>
#include <string>

#include "ipa/call_graph.hpp"
#include "ipa/summaries.hpp"

namespace fortd {

struct OverlapEstimates {
  /// Per procedure, per array variable: estimated overlap demand.
  std::map<std::string, std::map<std::string, OverlapOffsets>> estimates;

  const OverlapOffsets* lookup(const std::string& proc,
                               const std::string& var) const;
};

OverlapEstimates compute_overlap_estimates(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries);

}  // namespace fortd
