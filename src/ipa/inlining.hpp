// Procedure inlining — the other interprocedural transformation ParaScope
// supports (§4: "Inlining merges the body of the called procedure into
// the caller"). Inlining is the classical alternative to interprocedural
// compilation: it exposes the same context at the price of program
// growth and the loss of separate compilation. The bench_inlining ablation
// compares fully inlined programs against interprocedural compilation.
#pragma once

#include "ir/program.hpp"

namespace fortd {

struct InlineStats {
  int calls_inlined = 0;
  int statements_added = 0;
};

/// Inline one call statement. Formals bound to simple variables are
/// renamed to the actuals; expression actuals become initialized
/// temporaries; the callee's locals are renamed fresh. Returns false when
/// the call cannot be inlined (unknown callee, callee uses COMMON under a
/// different name binding, or a formal is written but bound to an
/// expression actual).
bool inline_call(BoundProgram& program, const std::string& caller,
                 const Stmt* call_stmt, InlineStats* stats = nullptr);

/// Repeatedly inline every call in the program (callee-first) until only
/// the main program remains. Throws CompileError on recursion.
InlineStats inline_all(BoundProgram& program);

}  // namespace fortd
