#include "ipa/call_graph.hpp"

#include <algorithm>
#include <functional>

namespace fortd {

AugmentedCallGraph AugmentedCallGraph::build(const BoundProgram& program) {
  AugmentedCallGraph acg;

  // Collect call sites with their enclosing-loop context.
  for (const auto& proc : program.ast.procedures) {
    const SymbolTable& st = program.symtab(proc->name);
    SymbolicEnv env = SymbolicEnv::from_params(*proc, st);

    std::vector<AcgLoop> loop_stack;
    std::function<void(const std::vector<StmtPtr>&)> visit =
        [&](const std::vector<StmtPtr>& stmts) {
          for (const auto& s : stmts) {
            switch (s->kind) {
              case StmtKind::Do: {
                AcgLoop loop;
                loop.stmt = s.get();
                loop.var = s->loop_var;
                auto lb = eval_int(*s->lb, env);
                auto ub = eval_int(*s->ub, env);
                auto step = s->step ? eval_int(*s->step, env)
                                    : std::optional<int64_t>(1);
                if (lb && ub && step && *step > 0)
                  loop.range = Triplet(*lb, *ub, *step);
                loop_stack.push_back(loop);
                visit(s->body);
                loop_stack.pop_back();
                break;
              }
              case StmtKind::If:
                visit(s->then_body);
                visit(s->else_body);
                break;
              case StmtKind::Call: {
                if (!program.ast.find(s->callee)) break;  // intrinsic
                CallSiteInfo site;
                site.site_id = static_cast<int>(acg.sites_.size());
                site.caller = proc->name;
                site.callee = s->callee;
                site.stmt = s.get();
                for (const auto& a : s->call_args) site.actuals.push_back(a.get());
                site.enclosing_loops = loop_stack;
                // Fig. 5 annotation: formals receiving loop index variables.
                for (size_t f = 0; f < s->call_args.size(); ++f) {
                  const Expr* a = s->call_args[f].get();
                  if (a->kind != ExprKind::VarRef) continue;
                  for (const auto& loop : loop_stack)
                    if (loop.var == a->name && loop.range)
                      site.formal_loop_ranges[static_cast<int>(f)] = *loop.range;
                }
                acg.site_of_stmt_[s.get()] = site.site_id;
                acg.sites_.push_back(std::move(site));
                break;
              }
              default:
                break;
            }
          }
        };
    visit(proc->body);
  }

  // Per-caller / per-callee call-site indices: calls_to/calls_from are on
  // the hot path of every interprocedural phase and must not scan sites_.
  for (const auto& site : acg.sites_) {
    acg.sites_from_[site.caller].push_back(site.site_id);
    acg.sites_to_[site.callee].push_back(site.site_id);
  }

  // Topological sort (Kahn) over the procedure call DAG.
  std::map<std::string, int> in_degree;
  std::map<std::string, std::vector<std::string>> succs;
  for (const auto& proc : program.ast.procedures) in_degree[proc->name] = 0;
  for (const auto& site : acg.sites_) {
    succs[site.caller].push_back(site.callee);
    ++in_degree[site.callee];
  }
  std::vector<std::string> ready;
  for (const auto& proc : program.ast.procedures)
    if (in_degree[proc->name] == 0) ready.push_back(proc->name);
  // Keep source order deterministic; the worklist is drained through a
  // head index instead of erase(begin()) (which made Kahn quadratic).
  for (size_t head = 0; head < ready.size(); ++head) {
    std::string p = ready[head];
    acg.topo_.push_back(p);
    for (const auto& q : succs[p])
      if (--in_degree[q] == 0) ready.push_back(q);
  }
  if (acg.topo_.size() != program.ast.procedures.size())
    throw CompileError({}, "recursive call graph: the single-pass Fortran D "
                           "compilation strategy requires non-recursive programs");

  for (size_t i = 0; i < program.ast.procedures.size(); ++i)
    acg.index_of_[program.ast.procedures[i]->name] = static_cast<int>(i);
  acg.topo_indices_.reserve(acg.topo_.size());
  for (const auto& name : acg.topo_)
    acg.topo_indices_.push_back(acg.index_of_.at(name));
  return acg;
}

std::vector<const CallSiteInfo*> AugmentedCallGraph::calls_to(
    const std::string& callee) const {
  std::vector<const CallSiteInfo*> out;
  auto it = sites_to_.find(callee);
  if (it == sites_to_.end()) return out;
  out.reserve(it->second.size());
  for (int id : it->second) out.push_back(&sites_[static_cast<size_t>(id)]);
  return out;
}

std::vector<const CallSiteInfo*> AugmentedCallGraph::calls_from(
    const std::string& caller) const {
  std::vector<const CallSiteInfo*> out;
  auto it = sites_from_.find(caller);
  if (it == sites_from_.end()) return out;
  out.reserve(it->second.size());
  for (int id : it->second) out.push_back(&sites_[static_cast<size_t>(id)]);
  return out;
}

const CallSiteInfo* AugmentedCallGraph::site_for(const Stmt* call_stmt) const {
  auto it = site_of_stmt_.find(call_stmt);
  return it == site_of_stmt_.end() ? nullptr : &sites_[static_cast<size_t>(it->second)];
}

std::vector<std::string> AugmentedCallGraph::reverse_topological_order() const {
  std::vector<std::string> out = topo_;
  std::reverse(out.begin(), out.end());
  return out;
}

int AugmentedCallGraph::procedure_index(const std::string& name) const {
  auto it = index_of_.find(name);
  return it == index_of_.end() ? -1 : it->second;
}

std::vector<int> AugmentedCallGraph::reverse_topological_indices() const {
  std::vector<int> out(topo_indices_.rbegin(), topo_indices_.rend());
  return out;
}

std::vector<std::vector<int>> AugmentedCallGraph::wavefront_levels() const {
  // level(P) = 1 + max(level(callee)); leaves sit at level 0. Walking the
  // reverse topological order guarantees every callee's level is final
  // before its callers are placed.
  std::map<std::string, int> level;
  std::map<std::string, std::vector<std::string>> callees;
  for (const auto& s : sites_) callees[s.caller].push_back(s.callee);
  int max_level = -1;
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
    int lvl = 0;
    auto cit = callees.find(*it);
    if (cit != callees.end())
      for (const auto& c : cit->second)
        lvl = std::max(lvl, level.at(c) + 1);
    level[*it] = lvl;
    max_level = std::max(max_level, lvl);
  }
  std::vector<std::vector<int>> out(static_cast<size_t>(max_level + 1));
  for (auto it = topo_.rbegin(); it != topo_.rend(); ++it)
    out[static_cast<size_t>(level.at(*it))].push_back(index_of_.at(*it));
  return out;
}

std::vector<std::vector<int>> AugmentedCallGraph::top_down_levels() const {
  // Dual of wavefront_levels(): level(P) = 1 + max(level(caller)); roots
  // (procedures without callers — the main program) sit at level 0.
  // Walking the forward topological order guarantees every caller's level
  // is final before its callees are placed.
  std::map<std::string, int> level;
  int max_level = -1;
  for (const auto& name : topo_) {
    int lvl = 0;
    auto sit = sites_to_.find(name);
    if (sit != sites_to_.end())
      for (int id : sit->second)
        lvl = std::max(lvl, level.at(sites_[static_cast<size_t>(id)].caller) + 1);
    level[name] = lvl;
    max_level = std::max(max_level, lvl);
  }
  std::vector<std::vector<int>> out(static_cast<size_t>(max_level + 1));
  for (const auto& name : topo_)
    out[static_cast<size_t>(level.at(name))].push_back(index_of_.at(name));
  return out;
}

bool AugmentedCallGraph::has_procedure(const std::string& name) const {
  return index_of_.count(name) > 0;
}

}  // namespace fortd
