// Recompilation analysis (§4/§8): preserve the benefits of separate
// compilation by recompiling, after an edit, only the procedures whose
// own source changed or whose *interprocedural inputs* changed — not the
// whole program.
//
// A CompilationRecord captures, per procedure:
//   * the structural hash of its body (local summary identity), and
//   * a hash of every interprocedural fact code generation consumed:
//     Reaching(P), overlap estimates, and the translated summary
//     interface (GMOD/GREF/def-use sections) of each callee.
// Editing a callee in a way that leaves its interface summary unchanged
// therefore does not trigger recompilation of its callers.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "ipa/cloning.hpp"
#include "ipa/overlap_prop.hpp"

namespace fortd {

struct CompilationRecord {
  std::map<std::string, uint64_t> proc_hashes;   // source identity
  std::map<std::string, uint64_t> input_hashes;  // interprocedural inputs
};

/// Hash of every interprocedural fact code generation consumes for
/// `proc`: Reaching(P), overlap estimates, the interface summary of each
/// callee, and run-time fallback status — the §8 recompilation-test
/// inputs. Shared by CompilationRecord and the codegen procedure cache so
/// both invalidate on exactly the same events.
uint64_t hash_codegen_inputs(const std::string& proc, const IpaContext& ctx,
                             const OverlapEstimates& overlaps);

/// Snapshot the current program + interprocedural solution.
CompilationRecord make_compilation_record(const BoundProgram& program,
                                          const IpaContext& ctx,
                                          const OverlapEstimates& overlaps);

/// The procedures that must be recompiled going from `before` to `after`:
/// new procedures, procedures whose source hash changed, and procedures
/// whose interprocedural input hash changed.
std::set<std::string> procedures_to_recompile(const CompilationRecord& before,
                                              const CompilationRecord& after);

}  // namespace fortd
