#include "ipa/alias.hpp"

#include <sstream>

#include "ir/rsd.hpp"
#include "ir/symbol_table.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

AliasPair AliasPair::make(std::string x, std::string y, std::string via_proc,
                          SourceLoc site_loc) {
  AliasPair p;
  if (y < x) std::swap(x, y);
  p.a = std::move(x);
  p.b = std::move(y);
  p.via = std::move(via_proc);
  p.loc = site_loc;
  return p;
}

const std::set<AliasPair>* AliasMap::of(const std::string& proc) const {
  auto it = pairs.find(proc);
  if (it == pairs.end() || it->second.empty()) return nullptr;
  return &it->second;
}

bool AliasMap::may_alias(const std::string& proc, const std::string& x,
                         const std::string& y) const {
  return find(proc, x, y) != nullptr;
}

const AliasPair* AliasMap::find(const std::string& proc, const std::string& x,
                                const std::string& y) const {
  const std::set<AliasPair>* set = of(proc);
  if (!set) return nullptr;
  auto it = set->find(AliasPair::make(x, y, "", {}));
  return it == set->end() ? nullptr : &*it;
}

int AliasMap::total_pairs() const {
  int n = 0;
  for (const auto& [proc, set] : pairs) n += static_cast<int>(set.size());
  return n;
}

std::string AliasMap::str() const {
  std::ostringstream os;
  for (const auto& [proc, set] : pairs) {
    if (set.empty()) continue;
    os << proc << ":\n";
    for (const AliasPair& p : set) {
      os << "  {" << p.a << ", " << p.b << "} via " << p.via << " @"
         << p.loc.line << ":" << p.loc.col << "\n";
    }
  }
  return os.str();
}

uint64_t hash_alias_entry(const AliasMap& am, const std::string& proc) {
  const std::set<AliasPair>* set = am.of(proc);
  if (!set) return 0;
  constexpr uint64_t kFnvPrime = 1099511628211ull;
  uint64_t h = 1469598103934665603ull;
  auto mix_str = [&](const std::string& s) {
    for (char c : s) {
      h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
      h *= kFnvPrime;
    }
    h ^= 0xff;
    h *= kFnvPrime;
  };
  for (const AliasPair& p : *set) {
    mix_str(p.a);
    mix_str(p.b);
  }
  return h;
}

namespace {

/// The caller-side storage covered by an actual argument, in the declared
/// index space of its base array. Exact only in the 1-D constant case
/// (constant subscript, constant-extent rank-1 formal), where Fortran
/// sequence association makes `a(c)` bound to a formal of extent E cover
/// exactly a(c : c+E-1); everything else conservatively covers the whole
/// declared array.
Rsd cover_of(const Expr& actual, const Symbol& base, const Symbol* formal_sym) {
  if (actual.kind == ExprKind::ArrayRef && base.rank() == 1 &&
      base.dims_const && formal_sym && formal_sym->is_array() &&
      formal_sym->rank() == 1 && formal_sym->dims_const &&
      actual.args.size() == 1 && actual.args[0]->kind == ExprKind::IntLit) {
    const int64_t start = actual.args[0]->int_val;
    const int64_t len = formal_sym->extent(0);
    if (len > 0) return Rsd({Triplet(start, start + len - 1, 1)});
  }
  return base.full_section();
}

struct ActualInfo {
  int formal = -1;       // formal position at the site
  std::string base;      // caller-side base name
  const Expr* expr = nullptr;
};

}  // namespace

std::set<AliasPair> pull_alias(const BoundProgram& program,
                               const AugmentedCallGraph& acg,
                               const AliasMap& am, const std::string& name) {
  std::set<AliasPair> out;
  const Procedure* callee = program.find(name);
  if (!callee) return out;
  const SymbolTable& callee_st = program.symtab(name);

  // Union over every call site targeting `name`. Site order is irrelevant:
  // identity is the sorted name pair and std::set canonicalizes, while
  // provenance ties break on insertion order — calls_to() is deterministic,
  // so the winning provenance is too.
  for (const CallSiteInfo* site : acg.calls_to(name)) {
    const SymbolTable& caller_st = program.symtab(site->caller);
    const SourceLoc site_loc = site->stmt ? site->stmt->loc : SourceLoc{};

    std::vector<ActualInfo> actuals;
    for (size_t f = 0; f < callee->formals.size() && f < site->actuals.size();
         ++f) {
      const Expr* a = site->actuals[f];
      if (a->kind != ExprKind::VarRef && a->kind != ExprKind::ArrayRef)
        continue;
      actuals.push_back({static_cast<int>(f), a->name, a});
    }

    auto add = [&](const std::string& x, const std::string& y) {
      if (x == y) return;
      out.insert(AliasPair::make(x, y, site->caller, site_loc));
    };

    // (1) Two actuals sharing a base: formal↔formal unless the covered
    // sections are provably disjoint under sequence association.
    for (size_t i = 0; i < actuals.size(); ++i) {
      for (size_t j = i + 1; j < actuals.size(); ++j) {
        if (actuals[i].base != actuals[j].base) continue;
        const Symbol* base = caller_st.lookup(actuals[i].base);
        if (base && base->is_array()) {
          const Symbol* fi =
              callee_st.lookup(callee->formals[static_cast<size_t>(
                  actuals[i].formal)]);
          const Symbol* fj =
              callee_st.lookup(callee->formals[static_cast<size_t>(
                  actuals[j].formal)]);
          const Rsd ci = cover_of(*actuals[i].expr, *base, fi);
          const Rsd cj = cover_of(*actuals[j].expr, *base, fj);
          if (ci.rank() == cj.rank() && Rsd::intersect(ci, cj).empty())
            continue;  // provably disjoint sections of one array
        }
        add(callee->formals[static_cast<size_t>(actuals[i].formal)],
            callee->formals[static_cast<size_t>(actuals[j].formal)]);
      }
    }

    // (2) An actual whose base is visible in the callee as a COMMON
    // global: the formal and the global name the same storage.
    for (const ActualInfo& a : actuals) {
      const Symbol* g = callee_st.lookup(a.base);
      if (g && g->is_global())
        add(callee->formals[static_cast<size_t>(a.formal)], a.base);
    }

    // (3) Caller pairs flow through the site: each member maps to the
    // formals its base is bound to, plus itself when visible in the
    // callee as a global. May-alias is not transitive, so only direct
    // images of one caller pair combine.
    auto pit = am.pairs.find(site->caller);
    if (pit == am.pairs.end()) continue;
    auto targets = [&](const std::string& caller_name) {
      std::vector<std::string> t;
      for (const ActualInfo& a : actuals)
        if (a.base == caller_name)
          t.push_back(callee->formals[static_cast<size_t>(a.formal)]);
      const Symbol* g = callee_st.lookup(caller_name);
      if (g && g->is_global()) t.push_back(caller_name);
      return t;
    };
    for (const AliasPair& cp : pit->second) {
      for (const std::string& x : targets(cp.a))
        for (const std::string& y : targets(cp.b)) add(x, y);
    }
  }
  return out;
}

namespace {

/// Depth-leveled baseline: top-down wavefronts (caller-before-callee
/// levels), each level's procedures pulling independently and publishing
/// at the level barrier in level order.
AliasMap compute_alias_map_wavefront(const BoundProgram& program,
                                     const AugmentedCallGraph& acg,
                                     ThreadPool* pool) {
  AliasMap am;
  const auto& procs = program.ast.procedures;
  for (const std::vector<int>& level : acg.top_down_levels()) {
    std::vector<std::set<AliasPair>> slots(level.size());
    auto one = [&](size_t k) {
      const std::string& name =
          procs[static_cast<size_t>(level[k])]->name;
      slots[k] = pull_alias(program, acg, am, name);
    };
    if (pool && level.size() > 1) {
      pool->parallel_for(level.size(), one);
    } else {
      for (size_t k = 0; k < level.size(); ++k) one(k);
    }
    for (size_t k = 0; k < level.size(); ++k) {
      const std::string& name =
          procs[static_cast<size_t>(level[k])]->name;
      if (!slots[k].empty()) am.pairs[name] = std::move(slots[k]);
    }
  }
  return am;
}

}  // namespace

AliasMap compute_alias_map(const BoundProgram& program,
                           const AugmentedCallGraph& acg, ThreadPool* pool,
                           Scheduler scheduler,
                           TaskGraphStats* sched_stats) {
  if (scheduler == Scheduler::Wavefront)
    return compute_alias_map_wavefront(program, acg, pool);

  // Barrier-free schedule: one node per procedure in topological order
  // (callers precede callees), each node depending on its callers, the
  // same shape as the ReachingDecomps work-stealing pass. Entries are
  // pre-sized so tasks assign mapped values in place without mutating map
  // structure; caller reads in pull_alias are ordered after the caller's
  // write by the dependency edge. Empty entries are erased afterwards so
  // the map is canonical (same entry-presence as wavefront/serial).
  const auto& procs = program.ast.procedures;
  const std::vector<int>& order = acg.topological_indices();
  std::vector<size_t> node_of(procs.size(), 0);
  for (size_t k = 0; k < order.size(); ++k)
    node_of[static_cast<size_t>(order[k])] = k;

  TaskGraph graph(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    for (const CallSiteInfo* site : acg.calls_to(name)) {
      const int caller = acg.procedure_index(site->caller);
      if (caller >= 0)
        graph.add_dependency(k, node_of[static_cast<size_t>(caller)]);
    }
  }

  AliasMap am;
  for (size_t k = 0; k < order.size(); ++k)
    am.pairs[procs[static_cast<size_t>(order[k])]->name];

  graph.run(pool, [&](size_t k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    am.pairs[name] = pull_alias(program, acg, am, name);
  });
  if (sched_stats) *sched_stats += graph.stats();

  for (auto it = am.pairs.begin(); it != am.pairs.end();) {
    if (it->second.empty())
      it = am.pairs.erase(it);
    else
      ++it;
  }
  return am;
}

}  // namespace fortd
