#include "ipa/reaching_decomps.hpp"

#include "support/thread_pool.hpp"

namespace fortd {

std::set<DecompSpec> ReachingDecomps::specs_for(const std::string& proc,
                                                const std::string& var) const {
  std::set<DecompSpec> out;
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return out;
  for (const auto& [stmt, vars] : pit->second) {
    auto vit = vars.find(var);
    if (vit == vars.end()) continue;
    for (const auto& spec : vit->second)
      if (!spec.is_top) out.insert(spec);
  }
  return out;
}

std::optional<DecompSpec> ReachingDecomps::unique_spec(
    const std::string& proc, const std::string& var) const {
  auto specs = specs_for(proc, var);
  if (specs.size() != 1) return std::nullopt;
  return *specs.begin();
}

bool ReachingDecomps::has_conflict(const std::string& proc,
                                   const std::string& var) const {
  return specs_for(proc, var).size() > 1;
}

std::set<DecompSpec> ReachingDecomps::specs_at(const std::string& proc,
                                               const Stmt* stmt,
                                               const std::string& var) const {
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return {};
  auto sit = pit->second.find(stmt);
  if (sit == pit->second.end()) return {};
  auto vit = sit->second.find(var);
  if (vit == sit->second.end()) return {};
  return vit->second;
}

std::map<std::string, std::set<DecompSpec>> pull_reaching(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const ReachingDecomps& rd, const std::string& name) {
  std::map<std::string, std::set<DecompSpec>> target;
  const Procedure* callee = program.find(name);
  if (!callee) return target;
  const SymbolTable& callee_st = program.symtab(name);

  // Union over every call site targeting `name`, translating the resolved
  // sets at the site (Fig. 6's Translate step). Site order is irrelevant:
  // the result is a set union, canonical in std::map/std::set form, so the
  // pull direction matches the push-style serial propagation exactly.
  for (const CallSiteInfo* site : acg.calls_to(name)) {
    auto pit = rd.at_stmt.find(site->caller);
    if (pit == rd.at_stmt.end()) continue;
    auto sit = pit->second.find(site->stmt);
    if (sit == pit->second.end()) continue;
    const auto& at_call = sit->second;

    // Formals: positionally matched array actuals.
    for (size_t f = 0; f < callee->formals.size() && f < site->actuals.size();
         ++f) {
      const Expr* actual = site->actuals[f];
      if (actual->kind != ExprKind::VarRef) continue;
      auto vit = at_call.find(actual->name);
      if (vit == at_call.end()) continue;
      for (const auto& spec : vit->second)
        if (!spec.is_top) target[callee->formals[f]].insert(spec);
    }
    // Globals: copied by name when the callee (transitively) declares
    // them; we copy whenever the name is an array in the caller and a
    // global array in the callee.
    for (const auto& [var, specs] : at_call) {
      const Symbol* sym = callee_st.lookup(var);
      if (!sym || !sym->is_global()) continue;
      for (const auto& spec : specs)
        if (!spec.is_top) target[var].insert(spec);
    }
  }
  return target;
}

namespace {

/// The depth-leveled baseline (PR 2), kept behind Scheduler::Wavefront.
/// Top-down wavefronts (caller-before-callee levels): a level's callers
/// were all published by earlier levels, so the level's pending
/// procedures pull independently. Slots are published at the level
/// barrier in level order — identical maps for every schedule.
int update_reaching_decomps_wavefront(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::set<std::string>& dirty, ReachingDecomps& rd,
    ThreadPool* pool) {
  const auto& procs = program.ast.procedures;
  struct Slot {
    std::map<std::string, std::set<DecompSpec>> reaching;
    std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>> at_stmt;
    bool reused = false;  // pulled set equals the stored entry; no publish
  };
  std::set<std::string> recomputed;
  for (const std::vector<int>& level : acg.top_down_levels()) {
    // Pending: seed-dirty procedures, plus callees of anything recomputed
    // at an earlier level (their pulled input may have changed).
    std::vector<int> pending;
    for (int idx : level) {
      const std::string& name = procs[static_cast<size_t>(idx)]->name;
      bool candidate = dirty.count(name) > 0;
      if (!candidate)
        for (const CallSiteInfo* site : acg.calls_to(name))
          if (recomputed.count(site->caller)) {
            candidate = true;
            break;
          }
      if (candidate) pending.push_back(idx);
    }
    if (pending.empty()) continue;
    std::vector<Slot> slots(pending.size());
    auto one = [&](size_t k) {
      const Procedure& proc = *procs[static_cast<size_t>(pending[k])];
      slots[k].reaching = pull_reaching(program, acg, rd, proc.name);
      // Change cutoff: text unchanged + identical pulled input ⇒ the
      // stored Reaching/at_stmt entries are still the fixed point.
      if (!dirty.count(proc.name)) {
        auto it = rd.reaching.find(proc.name);
        if (it != rd.reaching.end() && it->second == slots[k].reaching) {
          slots[k].reused = true;
          return;
        }
      }
      // Resolve LocalReaching point-wise with ⊤ expanded (the "replace
      // <top,X> with <D,X> from Reaching(P)" step of Fig. 6).
      slots[k].at_stmt =
          compute_local_reaching(program, proc, slots[k].reaching);
    };
    if (pool && pending.size() > 1) {
      pool->parallel_for(pending.size(), one);
    } else {
      for (size_t k = 0; k < pending.size(); ++k) one(k);
    }
    for (size_t k = 0; k < pending.size(); ++k) {
      if (slots[k].reused) continue;
      const std::string& name = procs[static_cast<size_t>(pending[k])]->name;
      rd.reaching[name] = std::move(slots[k].reaching);
      rd.at_stmt[name] = std::move(slots[k].at_stmt);
      recomputed.insert(name);
    }
  }
  return static_cast<int>(recomputed.size());
}

}  // namespace

int update_reaching_decomps(const BoundProgram& program,
                            const AugmentedCallGraph& acg,
                            const std::map<std::string, ProcSummary>& summaries,
                            const std::set<std::string>& dirty,
                            ReachingDecomps& rd, ThreadPool* pool,
                            Scheduler scheduler,
                            TaskGraphStats* sched_stats) {
  (void)summaries;
  if (scheduler == Scheduler::Wavefront)
    return update_reaching_decomps_wavefront(program, acg, dirty, rd, pool);

  // Barrier-free, dual edge direction to the bottom-up passes: one node
  // per procedure in topological order (callers precede callees), each
  // node depending on its *callers* — a procedure re-pulls the moment
  // its own callers resolved, not when a whole depth level did.
  //
  // Publication is in place: rd.reaching/rd.at_stmt are pre-sized with
  // an entry per procedure before the run, so a task assigns mapped
  // values without mutating map structure, and caller reads
  // (pull_reaching's const finds) are ordered after the caller's write
  // by the dependency edge. Whether a node is a candidate (dirty, or a
  // caller actually republished) and whether it hits the change cutoff
  // are pure functions of its callers' outcomes, so the candidate and
  // recomputed sets — and therefore the final maps — match the
  // wavefront and serial schedules exactly. Pre-sized entries of nodes
  // that never published and had no prior entry are erased afterwards:
  // §8 recompilation hashes are sensitive to entry *presence*
  // (hash_recompilation mixes Reaching(P) only when the entry exists),
  // so a lingering empty entry would perturb digests.
  const auto& procs = program.ast.procedures;
  const std::vector<int>& order = acg.topological_indices();
  std::vector<size_t> node_of(procs.size(), 0);
  for (size_t k = 0; k < order.size(); ++k)
    node_of[static_cast<size_t>(order[k])] = k;

  TaskGraph graph(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    for (const CallSiteInfo* site : acg.calls_to(name)) {
      const int caller = acg.procedure_index(site->caller);
      if (caller >= 0)
        graph.add_dependency(k, node_of[static_cast<size_t>(caller)]);
    }
  }

  // had[k]: a stored entry predates this update — the change cutoff must
  // distinguish a genuine prior fixed point from the pre-sized
  // placeholder (an empty placeholder would spuriously equal an empty
  // pulled set and skip LocalReaching resolution).
  std::vector<char> had(order.size(), 0);
  std::vector<char> published(order.size(), 0);
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    had[k] = rd.reaching.count(name) ? 1 : 0;
    rd.reaching[name];
    rd.at_stmt[name];
  }

  graph.run(pool, [&](size_t k) {
    const Procedure& proc = *procs[static_cast<size_t>(order[k])];
    bool candidate = dirty.count(proc.name) > 0;
    if (!candidate)
      for (const CallSiteInfo* site : acg.calls_to(proc.name)) {
        const int caller = acg.procedure_index(site->caller);
        if (caller >= 0 && published[node_of[static_cast<size_t>(caller)]]) {
          candidate = true;
          break;
        }
      }
    if (!candidate) return;
    auto pulled = pull_reaching(program, acg, rd, proc.name);
    // Change cutoff: text unchanged + identical pulled input ⇒ the
    // stored Reaching/at_stmt entries are still the fixed point.
    if (!dirty.count(proc.name) && had[k] &&
        rd.reaching[proc.name] == pulled)
      return;
    rd.at_stmt[proc.name] = compute_local_reaching(program, proc, pulled);
    rd.reaching[proc.name] = std::move(pulled);
    published[k] = 1;
  });
  if (sched_stats) *sched_stats += graph.stats();

  int recomputed = 0;
  for (size_t k = 0; k < order.size(); ++k) {
    if (published[k]) {
      ++recomputed;
    } else if (!had[k]) {
      const std::string& name = procs[static_cast<size_t>(order[k])]->name;
      rd.reaching.erase(name);
      rd.at_stmt.erase(name);
    }
  }
  return recomputed;
}

ReachingDecomps compute_reaching_decomps(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries, ThreadPool* pool,
    Scheduler scheduler) {
  ReachingDecomps rd;
  std::set<std::string> all;
  for (const auto& proc : program.ast.procedures) all.insert(proc->name);
  update_reaching_decomps(program, acg, summaries, all, rd, pool, scheduler);
  return rd;
}

}  // namespace fortd
