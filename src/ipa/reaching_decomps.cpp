#include "ipa/reaching_decomps.hpp"

#include "support/thread_pool.hpp"

namespace fortd {

std::set<DecompSpec> ReachingDecomps::specs_for(const std::string& proc,
                                                const std::string& var) const {
  std::set<DecompSpec> out;
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return out;
  for (const auto& [stmt, vars] : pit->second) {
    auto vit = vars.find(var);
    if (vit == vars.end()) continue;
    for (const auto& spec : vit->second)
      if (!spec.is_top) out.insert(spec);
  }
  return out;
}

std::optional<DecompSpec> ReachingDecomps::unique_spec(
    const std::string& proc, const std::string& var) const {
  auto specs = specs_for(proc, var);
  if (specs.size() != 1) return std::nullopt;
  return *specs.begin();
}

bool ReachingDecomps::has_conflict(const std::string& proc,
                                   const std::string& var) const {
  return specs_for(proc, var).size() > 1;
}

std::set<DecompSpec> ReachingDecomps::specs_at(const std::string& proc,
                                               const Stmt* stmt,
                                               const std::string& var) const {
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return {};
  auto sit = pit->second.find(stmt);
  if (sit == pit->second.end()) return {};
  auto vit = sit->second.find(var);
  if (vit == sit->second.end()) return {};
  return vit->second;
}

std::map<std::string, std::set<DecompSpec>> pull_reaching(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const ReachingDecomps& rd, const std::string& name) {
  std::map<std::string, std::set<DecompSpec>> target;
  const Procedure* callee = program.find(name);
  if (!callee) return target;
  const SymbolTable& callee_st = program.symtab(name);

  // Union over every call site targeting `name`, translating the resolved
  // sets at the site (Fig. 6's Translate step). Site order is irrelevant:
  // the result is a set union, canonical in std::map/std::set form, so the
  // pull direction matches the push-style serial propagation exactly.
  for (const CallSiteInfo* site : acg.calls_to(name)) {
    auto pit = rd.at_stmt.find(site->caller);
    if (pit == rd.at_stmt.end()) continue;
    auto sit = pit->second.find(site->stmt);
    if (sit == pit->second.end()) continue;
    const auto& at_call = sit->second;

    // Formals: positionally matched array actuals.
    for (size_t f = 0; f < callee->formals.size() && f < site->actuals.size();
         ++f) {
      const Expr* actual = site->actuals[f];
      if (actual->kind != ExprKind::VarRef) continue;
      auto vit = at_call.find(actual->name);
      if (vit == at_call.end()) continue;
      for (const auto& spec : vit->second)
        if (!spec.is_top) target[callee->formals[f]].insert(spec);
    }
    // Globals: copied by name when the callee (transitively) declares
    // them; we copy whenever the name is an array in the caller and a
    // global array in the callee.
    for (const auto& [var, specs] : at_call) {
      const Symbol* sym = callee_st.lookup(var);
      if (!sym || !sym->is_global()) continue;
      for (const auto& spec : specs)
        if (!spec.is_top) target[var].insert(spec);
    }
  }
  return target;
}

int update_reaching_decomps(const BoundProgram& program,
                            const AugmentedCallGraph& acg,
                            const std::map<std::string, ProcSummary>& summaries,
                            const std::set<std::string>& dirty,
                            ReachingDecomps& rd, ThreadPool* pool) {
  (void)summaries;
  // Top-down wavefronts (caller-before-callee levels): a level's callers
  // were all published by earlier levels, so the level's pending procedures
  // pull independently. Slots are published at the level barrier in level
  // order — identical maps for every schedule.
  const auto& procs = program.ast.procedures;
  struct Slot {
    std::map<std::string, std::set<DecompSpec>> reaching;
    std::map<const Stmt*, std::map<std::string, std::set<DecompSpec>>> at_stmt;
    bool reused = false;  // pulled set equals the stored entry; no publish
  };
  std::set<std::string> recomputed;
  for (const std::vector<int>& level : acg.top_down_levels()) {
    // Pending: seed-dirty procedures, plus callees of anything recomputed
    // at an earlier level (their pulled input may have changed).
    std::vector<int> pending;
    for (int idx : level) {
      const std::string& name = procs[static_cast<size_t>(idx)]->name;
      bool candidate = dirty.count(name) > 0;
      if (!candidate)
        for (const CallSiteInfo* site : acg.calls_to(name))
          if (recomputed.count(site->caller)) {
            candidate = true;
            break;
          }
      if (candidate) pending.push_back(idx);
    }
    if (pending.empty()) continue;
    std::vector<Slot> slots(pending.size());
    auto one = [&](size_t k) {
      const Procedure& proc = *procs[static_cast<size_t>(pending[k])];
      slots[k].reaching = pull_reaching(program, acg, rd, proc.name);
      // Change cutoff: text unchanged + identical pulled input ⇒ the
      // stored Reaching/at_stmt entries are still the fixed point.
      if (!dirty.count(proc.name)) {
        auto it = rd.reaching.find(proc.name);
        if (it != rd.reaching.end() && it->second == slots[k].reaching) {
          slots[k].reused = true;
          return;
        }
      }
      // Resolve LocalReaching point-wise with ⊤ expanded (the "replace
      // <top,X> with <D,X> from Reaching(P)" step of Fig. 6).
      slots[k].at_stmt =
          compute_local_reaching(program, proc, slots[k].reaching);
    };
    if (pool && pending.size() > 1) {
      pool->parallel_for(pending.size(), one);
    } else {
      for (size_t k = 0; k < pending.size(); ++k) one(k);
    }
    for (size_t k = 0; k < pending.size(); ++k) {
      if (slots[k].reused) continue;
      const std::string& name = procs[static_cast<size_t>(pending[k])]->name;
      rd.reaching[name] = std::move(slots[k].reaching);
      rd.at_stmt[name] = std::move(slots[k].at_stmt);
      recomputed.insert(name);
    }
  }
  return static_cast<int>(recomputed.size());
}

ReachingDecomps compute_reaching_decomps(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries, ThreadPool* pool) {
  ReachingDecomps rd;
  std::set<std::string> all;
  for (const auto& proc : program.ast.procedures) all.insert(proc->name);
  update_reaching_decomps(program, acg, summaries, all, rd, pool);
  return rd;
}

}  // namespace fortd
