#include "ipa/reaching_decomps.hpp"

namespace fortd {

std::set<DecompSpec> ReachingDecomps::specs_for(const std::string& proc,
                                                const std::string& var) const {
  std::set<DecompSpec> out;
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return out;
  for (const auto& [stmt, vars] : pit->second) {
    auto vit = vars.find(var);
    if (vit == vars.end()) continue;
    for (const auto& spec : vit->second)
      if (!spec.is_top) out.insert(spec);
  }
  return out;
}

std::optional<DecompSpec> ReachingDecomps::unique_spec(
    const std::string& proc, const std::string& var) const {
  auto specs = specs_for(proc, var);
  if (specs.size() != 1) return std::nullopt;
  return *specs.begin();
}

bool ReachingDecomps::has_conflict(const std::string& proc,
                                   const std::string& var) const {
  return specs_for(proc, var).size() > 1;
}

std::set<DecompSpec> ReachingDecomps::specs_at(const std::string& proc,
                                               const Stmt* stmt,
                                               const std::string& var) const {
  auto pit = at_stmt.find(proc);
  if (pit == at_stmt.end()) return {};
  auto sit = pit->second.find(stmt);
  if (sit == pit->second.end()) return {};
  auto vit = sit->second.find(var);
  if (vit == sit->second.end()) return {};
  return vit->second;
}

ReachingDecomps compute_reaching_decomps(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries) {
  ReachingDecomps rd;

  // Top-down over the call graph: callers are fully resolved before any of
  // their callees are visited.
  for (const std::string& name : acg.topological_order()) {
    const Procedure* proc = program.find(name);
    const std::map<std::string, std::set<DecompSpec>>& inherited =
        rd.reaching[name];  // empty for the main program

    // Resolve LocalReaching point-wise with ⊤ expanded (the "replace
    // <top,X> with <D,X> from Reaching(P)" step of Fig. 6).
    rd.at_stmt[name] = compute_local_reaching(program, *proc, inherited);

    // Translate the resolved sets at each call site into the callee.
    for (const CallSiteInfo* site : acg.calls_from(name)) {
      const Procedure* callee = program.find(site->callee);
      if (!callee) continue;
      auto sit = rd.at_stmt[name].find(site->stmt);
      if (sit == rd.at_stmt[name].end()) continue;
      const auto& at_call = sit->second;

      auto& target = rd.reaching[site->callee];
      // Formals: positionally matched array actuals.
      for (size_t f = 0; f < callee->formals.size() && f < site->actuals.size();
           ++f) {
        const Expr* actual = site->actuals[f];
        if (actual->kind != ExprKind::VarRef) continue;
        auto vit = at_call.find(actual->name);
        if (vit == at_call.end()) continue;
        for (const auto& spec : vit->second)
          if (!spec.is_top) target[callee->formals[f]].insert(spec);
      }
      // Globals: copied by name when the callee (transitively) declares
      // them; we copy whenever the name is an array in the caller and a
      // global array in the callee.
      const SymbolTable& callee_st = program.symtab(site->callee);
      for (const auto& [var, specs] : at_call) {
        const Symbol* sym = callee_st.lookup(var);
        if (!sym || !sym->is_global()) continue;
        for (const auto& spec : specs)
          if (!spec.is_top) target[var].insert(spec);
      }
    }

    (void)summaries;
  }
  return rd;
}

}  // namespace fortd
