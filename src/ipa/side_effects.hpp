// Interprocedural scalar and array side-effect analysis (GMOD/GREF) and
// the Appear(P) sets of §5.2: Appear(P) = Gmod(P) ∪ Gref(P), the formals
// and globals accessed by P or its descendants. Computed bottom-up over
// the ACG, translating callee formals to actuals at each call site.
//
// Array def/use *sections* (RSD summaries, §5.4) propagate alongside:
// `gdefs`/`guses` give, per procedure, the sections of each array that may
// be defined/used by the procedure or its descendants, in the procedure's
// own name space.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ipa/alias.hpp"
#include "ipa/call_graph.hpp"
#include "ipa/summaries.hpp"
#include "support/task_graph.hpp"

namespace fortd {

struct SideEffects {
  /// Transitive MOD/REF per procedure (variable names in that procedure).
  std::map<std::string, std::set<std::string>> gmod;
  std::map<std::string, std::set<std::string>> gref;
  /// Transitive array def/use sections per procedure.
  std::map<std::string, std::map<std::string, RsdList>> gdefs;
  std::map<std::string, std::map<std::string, RsdList>> guses;

  /// Appear(P): formals and globals of P in Gmod(P) ∪ Gref(P).
  std::set<std::string> appear(const std::string& proc,
                               const BoundProgram& program) const;
};

/// Translate a callee-scope variable name to the caller scope at a call
/// site: formals map to their actual argument's base variable (nullopt for
/// expression actuals), globals map to themselves.
std::optional<std::string> translate_to_caller(const std::string& callee_var,
                                               const Procedure& callee,
                                               const CallSiteInfo& site);

class ThreadPool;

/// One procedure's transitive effects, computed from its summary plus the
/// already-published entries of its callees in `fx` (missing callee
/// entries contribute nothing). With `aliases`, each entry is widened over
/// the procedure's may-alias pairs: a write through one member of a pair
/// may write the other's storage (§6.4), so mod/ref names and def/use
/// sections close over the pair set.
struct ProcEffects {
  std::set<std::string> mod;
  std::set<std::string> ref;
  std::map<std::string, RsdList> defs;
  std::map<std::string, RsdList> uses;
};
ProcEffects compute_proc_effects(const BoundProgram& program,
                                 const AugmentedCallGraph& acg,
                                 const std::map<std::string, ProcSummary>& summaries,
                                 const SideEffects& fx, const std::string& name,
                                 const AliasMap* aliases = nullptr);

/// Recompute the entries of every procedure in `dirty` bottom-up over the
/// ACG (callee-before-caller dependency order; dirty procedures run
/// concurrently on `pool` when given — work-stealing by default, depth
/// levels with barriers under Scheduler::Wavefront), reusing all other
/// entries already in `fx`. `dirty` must be closed upward: a procedure
/// whose callee is dirty must itself be dirty. Resulting maps are
/// identical for every schedule and jobs count. `sched_stats`, when
/// non-null, accumulates the work-stealing run's counters.
void update_side_effects(const BoundProgram& program,
                         const AugmentedCallGraph& acg,
                         const std::map<std::string, ProcSummary>& summaries,
                         const std::set<std::string>& dirty, SideEffects& fx,
                         ThreadPool* pool = nullptr,
                         Scheduler scheduler = Scheduler::WorkStealing,
                         TaskGraphStats* sched_stats = nullptr,
                         const AliasMap* aliases = nullptr);

SideEffects compute_side_effects(const BoundProgram& program,
                                 const AugmentedCallGraph& acg,
                                 const std::map<std::string, ProcSummary>& summaries,
                                 ThreadPool* pool = nullptr,
                                 Scheduler scheduler = Scheduler::WorkStealing,
                                 const AliasMap* aliases = nullptr);

}  // namespace fortd
