#include "ipa/summary_cache.hpp"

#include "driver/compilation_db.hpp"
#include "ir/ir_serialize.hpp"
#include "support/compress.hpp"

namespace fortd {

const char kSummaryArtifactKind[] = "summary";

uint64_t summary_artifact_format_hash() {
  uint64_t h = 1469598103934665603ull;
  for (const char* c = kSummaryArtifactKind; *c; ++c) {
    h ^= static_cast<unsigned char>(*c);
    h *= 1099511628211ull;
  }
  h ^= kSerializeFormatVersion;
  h *= 1099511628211ull;
  h ^= kCompressFormatVersion;
  h *= 1099511628211ull;
  return h;
}

namespace {

std::vector<const Stmt*> preorder_stmts(const Procedure& proc) {
  std::vector<const Stmt*> out;
  walk_stmts(proc.body, [&](const Stmt& s) { out.push_back(&s); });
  return out;
}

void write_str_set(BinaryWriter& w, const std::set<std::string>& s) {
  w.count(s.size());
  for (const std::string& v : s) w.str(v);
}

std::set<std::string> read_str_set(BinaryReader& r) {
  std::set<std::string> s;
  size_t n = r.count();
  for (size_t i = 0; i < n; ++i) s.insert(r.str());
  return s;
}

void write_rsd_map(BinaryWriter& w, const std::map<std::string, RsdList>& m) {
  w.count(m.size());
  for (const auto& [array, list] : m) {
    w.str(array);
    write_rsd_list(w, list);
  }
}

std::map<std::string, RsdList> read_rsd_map(BinaryReader& r) {
  std::map<std::string, RsdList> m;
  size_t n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string array = r.str();
    m[array] = read_rsd_list(r);
  }
  return m;
}

void write_idx_vec(BinaryWriter& w, const std::vector<size_t>& v) {
  w.count(v.size());
  for (size_t x : v) w.u64(x);
}

std::vector<size_t> read_idx_vec(BinaryReader& r) {
  std::vector<size_t> v(r.count());
  for (size_t& x : v) x = static_cast<size_t>(r.u64());
  return v;
}

}  // namespace

std::vector<uint8_t> IpaSummaryCache::serialize_entry(const Entry& entry) {
  const ProcSummary& s = entry.summary;
  BinaryWriter w;
  w.str(s.proc);
  w.u64(s.hash);
  write_str_set(w, s.mod);
  write_str_set(w, s.ref);
  write_rsd_map(w, s.defs);
  write_rsd_map(w, s.uses);
  w.count(s.align.size());
  for (const auto& [array, info] : s.align) {
    w.str(array);
    w.str(info.target);
    w.count(info.perm.size());
    for (int p : info.perm) w.i64(p);
  }
  // distribute_stmts / local_reaching call_stmts are stored as pre-order
  // indices (the pointers in entry.summary are already nulled).
  write_idx_vec(w, entry.distribute_idx);
  w.count(s.local_reaching.size());
  for (const LocalReachingEntry& lr : s.local_reaching) {
    w.str(lr.callee);
    w.count(lr.reaching.size());
    for (const auto& [var, specs] : lr.reaching) {
      w.str(var);
      w.count(specs.size());
      for (const DecompSpec& spec : specs) write_decomp_spec(w, spec);
    }
  }
  write_idx_vec(w, entry.call_idx);
  w.count(s.overlaps.size());
  for (const auto& [array, off] : s.overlaps) {
    w.str(array);
    w.count(off.pos.size());
    for (int64_t v : off.pos) w.i64(v);
    w.count(off.neg.size());
    for (int64_t v : off.neg) w.i64(v);
  }
  w.boolean(s.has_dynamic_decomp);
  w.u64(entry.stmt_count);
  return w.take();
}

std::optional<IpaSummaryCache::Entry> IpaSummaryCache::deserialize_entry(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  Entry entry;
  ProcSummary& s = entry.summary;
  s.proc = r.str();
  s.hash = r.u64();
  s.mod = read_str_set(r);
  s.ref = read_str_set(r);
  s.defs = read_rsd_map(r);
  s.uses = read_rsd_map(r);
  size_t n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string array = r.str();
    AlignInfo info;
    info.target = r.str();
    size_t m = r.count();
    info.perm.reserve(m);
    for (size_t k = 0; k < m; ++k)
      info.perm.push_back(static_cast<int>(r.i64()));
    s.align[array] = std::move(info);
  }
  entry.distribute_idx = read_idx_vec(r);
  s.distribute_stmts.assign(entry.distribute_idx.size(), nullptr);
  n = r.count();
  s.local_reaching.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    LocalReachingEntry lr;
    lr.callee = r.str();
    size_t m = r.count();
    for (size_t k = 0; k < m; ++k) {
      std::string var = r.str();
      size_t nspecs = r.count();
      std::set<DecompSpec>& specs = lr.reaching[var];
      for (size_t j = 0; j < nspecs; ++j) specs.insert(read_decomp_spec(r));
    }
    s.local_reaching.push_back(std::move(lr));
  }
  entry.call_idx = read_idx_vec(r);
  if (entry.call_idx.size() != s.local_reaching.size()) return std::nullopt;
  n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string array = r.str();
    OverlapOffsets off;
    size_t m = r.count();
    off.pos.reserve(m);
    for (size_t k = 0; k < m; ++k) off.pos.push_back(r.i64());
    m = r.count();
    off.neg.reserve(m);
    for (size_t k = 0; k < m; ++k) off.neg.push_back(r.i64());
    s.overlaps[array] = std::move(off);
  }
  s.has_dynamic_decomp = r.boolean();
  entry.stmt_count = static_cast<size_t>(r.u64());
  if (!r.ok() || !r.at_end()) return std::nullopt;
  // Index sanity: every rehydration slot must fall inside the body.
  for (size_t idx : entry.distribute_idx)
    if (idx >= entry.stmt_count) return std::nullopt;
  for (size_t idx : entry.call_idx)
    if (idx >= entry.stmt_count) return std::nullopt;
  return entry;
}

std::optional<IpaSummaryCache::Entry> IpaSummaryCache::fetch(uint64_t hash) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) return it->second;  // copy: insert() may race
  }
  if (store_) {
    if (auto payload = store_->load(kSummaryArtifactKind,
                                    summary_artifact_format_hash(), hash)) {
      if (auto entry = deserialize_entry(*payload)) {
        std::lock_guard<std::mutex> lock(mu_);
        entries_[hash] = *entry;  // promote into the memory tier
        return entry;
      }
      store_->mark_corrupt(kSummaryArtifactKind, hash);
    }
  }
  return std::nullopt;
}

std::optional<ProcSummary> IpaSummaryCache::lookup(uint64_t hash,
                                                   const Procedure& proc) {
  std::optional<Entry> entry = fetch(hash);
  if (!entry) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
  }
  // Rehydrate Stmt pointers against the current AST. The hash covers the
  // whole procedure structure, so the pre-order shape must match; the
  // count check guards against hash collisions.
  std::vector<const Stmt*> order = preorder_stmts(proc);
  if (order.size() != entry->stmt_count) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
  }
  ProcSummary out = std::move(entry->summary);
  for (size_t i = 0; i < entry->distribute_idx.size(); ++i)
    out.distribute_stmts[i] = order[entry->distribute_idx[i]];
  for (size_t i = 0; i < entry->call_idx.size(); ++i)
    out.local_reaching[i].call_stmt = order[entry->call_idx[i]];
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
  }
  return out;
}

void IpaSummaryCache::insert(uint64_t hash, const Procedure& proc,
                             const ProcSummary& summary) {
  std::map<const Stmt*, size_t> index_of;
  size_t count = 0;
  walk_stmts(proc.body, [&](const Stmt& s) { index_of[&s] = count++; });

  Entry entry;
  entry.stmt_count = count;
  entry.summary = summary;
  for (size_t i = 0; i < summary.distribute_stmts.size(); ++i) {
    auto it = index_of.find(summary.distribute_stmts[i]);
    if (it == index_of.end()) return;  // foreign pointer: refuse to cache
    entry.distribute_idx.push_back(it->second);
    entry.summary.distribute_stmts[i] = nullptr;
  }
  for (size_t i = 0; i < summary.local_reaching.size(); ++i) {
    auto it = index_of.find(summary.local_reaching[i].call_stmt);
    if (it == index_of.end()) return;
    entry.call_idx.push_back(it->second);
    entry.summary.local_reaching[i].call_stmt = nullptr;
  }

  if (store_)
    store_->store(kSummaryArtifactKind, summary_artifact_format_hash(), hash,
                  serialize_entry(entry));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[hash] = std::move(entry);
}

uint64_t IpaSummaryCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t IpaSummaryCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t IpaSummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void IpaSummaryCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fortd
