#include "ipa/summary_cache.hpp"

namespace fortd {

namespace {

std::vector<const Stmt*> preorder_stmts(const Procedure& proc) {
  std::vector<const Stmt*> out;
  walk_stmts(proc.body, [&](const Stmt& s) { out.push_back(&s); });
  return out;
}

}  // namespace

std::optional<ProcSummary> IpaSummaryCache::lookup(uint64_t hash,
                                                   const Procedure& proc) {
  Entry entry;  // copied out under the lock: insert() may overwrite slots
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    entry = it->second;
  }
  // Rehydrate Stmt pointers against the current AST. The hash covers the
  // whole procedure structure, so the pre-order shape must match; the
  // count check guards against hash collisions.
  std::vector<const Stmt*> order = preorder_stmts(proc);
  if (order.size() != entry.stmt_count) {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    return std::nullopt;
  }
  ProcSummary out = std::move(entry.summary);
  for (size_t i = 0; i < entry.distribute_idx.size(); ++i)
    out.distribute_stmts[i] = order[entry.distribute_idx[i]];
  for (size_t i = 0; i < entry.call_idx.size(); ++i)
    out.local_reaching[i].call_stmt = order[entry.call_idx[i]];
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++hits_;
  }
  return out;
}

void IpaSummaryCache::insert(uint64_t hash, const Procedure& proc,
                             const ProcSummary& summary) {
  std::map<const Stmt*, size_t> index_of;
  size_t count = 0;
  walk_stmts(proc.body, [&](const Stmt& s) { index_of[&s] = count++; });

  Entry entry;
  entry.stmt_count = count;
  entry.summary = summary;
  for (size_t i = 0; i < summary.distribute_stmts.size(); ++i) {
    auto it = index_of.find(summary.distribute_stmts[i]);
    if (it == index_of.end()) return;  // foreign pointer: refuse to cache
    entry.distribute_idx.push_back(it->second);
    entry.summary.distribute_stmts[i] = nullptr;
  }
  for (size_t i = 0; i < summary.local_reaching.size(); ++i) {
    auto it = index_of.find(summary.local_reaching[i].call_stmt);
    if (it == index_of.end()) return;
    entry.call_idx.push_back(it->second);
    entry.summary.local_reaching[i].call_stmt = nullptr;
  }

  std::lock_guard<std::mutex> lock(mu_);
  entries_[hash] = std::move(entry);
}

uint64_t IpaSummaryCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t IpaSummaryCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

size_t IpaSummaryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void IpaSummaryCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fortd
