// Procedure cloning (Fig. 8) and the overall interprocedural analysis
// driver. Call sites to P are partitioned by
// Filter(Translate(LocalReaching(C)), Appear(P)); each partition beyond
// the first gets a clone of P so every procedure body sees a unique
// decomposition per variable. Exceeding the growth threshold flips the
// offending procedure to run-time resolution, as §5.2 prescribes.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ipa/call_graph.hpp"
#include "ipa/reaching_decomps.hpp"
#include "ipa/side_effects.hpp"
#include "ipa/summaries.hpp"

namespace fortd {

struct IpaOptions {
  bool enable_cloning = true;
  /// Growth threshold: cloning stops (falling back to run-time
  /// resolution) once the program would exceed this many procedures.
  int max_procedures = 256;
};

/// Everything the interprocedural propagation phase produces; the input
/// to interprocedural code generation.
struct IpaContext {
  AugmentedCallGraph acg;
  std::map<std::string, ProcSummary> summaries;
  SideEffects effects;
  ReachingDecomps reaching;
  /// Procedures whose decomposition conflicts could not be cloned away.
  std::set<std::string> runtime_fallback;
  /// clone name -> original name.
  std::map<std::string, std::string> clone_origin;
  int clones_created = 0;
};

/// One cloning pass; returns the number of clones created (the caller
/// must re-run analysis when > 0). Populates `ctx.runtime_fallback` when
/// the growth threshold is hit.
int apply_cloning_pass(BoundProgram& program, IpaContext& ctx,
                       const IpaOptions& options);

/// Build the full interprocedural context: ACG + summaries + side effects
/// + reaching decompositions, iterating cloning to a fixed point.
IpaContext run_ipa(BoundProgram& program, const IpaOptions& options = {});

}  // namespace fortd
