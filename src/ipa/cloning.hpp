// Procedure cloning (Fig. 8) and the overall interprocedural analysis
// driver. Call sites to P are partitioned by
// Filter(Translate(LocalReaching(C)), Appear(P)); each partition beyond
// the first gets a clone of P so every procedure body sees a unique
// decomposition per variable. Exceeding the growth threshold flips the
// offending procedure to run-time resolution, as §5.2 prescribes.
#pragma once

#include <map>
#include <set>
#include <string>

#include "ipa/alias.hpp"
#include "ipa/call_graph.hpp"
#include "ipa/reaching_decomps.hpp"
#include "ipa/side_effects.hpp"
#include "ipa/summaries.hpp"

namespace fortd {

struct IpaOptions {
  bool enable_cloning = true;
  /// Growth threshold: cloning stops (falling back to run-time
  /// resolution) once the program would exceed this many procedures.
  int max_procedures = 256;
  /// After a cloning pass, recompute summaries / side effects / reaching
  /// decompositions only for the dirty set (new clones, retargeted
  /// callers, and their closures along ACG edges) instead of re-running
  /// all of IPA. Results are identical either way; set to false to force
  /// full recomputation every round (tests compare the two).
  bool incremental = true;
  /// Schedule for the parallel propagation passes (side effects,
  /// reaching decomps): barrier-free work-stealing (default) or the
  /// depth-leveled wavefront baseline. Results are identical either way.
  Scheduler scheduler = Scheduler::WorkStealing;
};

/// What one cloning pass changed — the seed of the incremental dirty sets.
struct CloneDelta {
  /// Clone names, in creation order.
  std::vector<std::string> new_clones;
  /// Procedures with at least one call site retargeted to a clone (their
  /// bodies changed: `s.callee` was rewritten).
  std::set<std::string> retargeted_callers;
  /// Originals that lost call sites to their clones (their Reaching sets
  /// may shrink).
  std::set<std::string> cloned_origins;
};

/// Counters of the IPA phase (copied into CompilerStats by the driver).
struct IpaStats {
  int rounds = 0;              // cloning fixed-point iterations
  int rounds_incremental = 0;  // rounds that used dirty-set recomputation
  int summaries_computed = 0;  // ran compute_summary
  int summaries_cached = 0;    // rehydrated from the IpaSummaryCache
  int summaries_reused = 0;    // carried over unchanged between rounds
  int effects_reused = 0;      // side-effect entries carried over
  int reaching_reused = 0;     // reaching entries carried over
  /// Work-stealing scheduler counters summed over both propagation
  /// passes and every cloning round (zero under Scheduler::Wavefront).
  TaskGraphStats sched;
};

/// Everything the interprocedural propagation phase produces; the input
/// to interprocedural code generation.
struct IpaContext {
  AugmentedCallGraph acg;
  std::map<std::string, ProcSummary> summaries;
  SideEffects effects;
  ReachingDecomps reaching;
  /// May-alias pairs per procedure (§6.4), recomputed every round from
  /// the current ACG; widens side effects and splits cloning partitions.
  AliasMap alias;
  /// Procedures whose decomposition conflicts could not be cloned away.
  std::set<std::string> runtime_fallback;
  /// clone name -> original name.
  std::map<std::string, std::string> clone_origin;
  int clones_created = 0;
  IpaStats stats;
};

/// One cloning pass; returns the number of clones created (the caller
/// must re-run analysis when > 0). Populates `ctx.runtime_fallback` when
/// the growth threshold is hit. `delta`, when non-null, receives the
/// dirty-set seeds of this pass.
int apply_cloning_pass(BoundProgram& program, IpaContext& ctx,
                       const IpaOptions& options, CloneDelta* delta = nullptr);

class ThreadPool;
class IpaSummaryCache;

/// Build the full interprocedural context: ACG + summaries + side effects
/// + reaching decompositions, iterating cloning to a fixed point. With a
/// `pool`, each phase runs wavefront-parallel over the ACG levels (output
/// byte-identical to serial); with a `summary_cache`, unchanged
/// procedures skip local analysis across run_ipa calls.
IpaContext run_ipa(BoundProgram& program, const IpaOptions& options = {},
                   ThreadPool* pool = nullptr,
                   IpaSummaryCache* summary_cache = nullptr);

}  // namespace fortd
