// Interprocedural may-alias analysis at call boundaries (the paper's
// truncated §6.4, reconstructed): two names in a procedure may alias when
// some call chain binds them to overlapping storage. Pairs are introduced
// at call sites —
//   formal↔formal : two actuals at one site share a base array and their
//                   sections (via the RSD algebra, with Fortran sequence
//                   association for subscripted actuals) are not provably
//                   disjoint, or a caller-side alias pair maps onto two
//                   distinct formals;
//   formal↔global : an actual's base is visible in the callee as a COMMON
//                   global (the classic reference/COMMON aliasing case);
// and flow caller→callee over the AugmentedCallGraph (a callee inherits
// aliasing from every site that can reach it, so propagation runs callers
// first — the same top-down direction as ReachingDecomps).
//
// The result is schedule-invariant: per-procedure entries are canonical
// std::set unions of per-site contributions, so serial, wavefront, and
// work-stealing runs produce byte-identical maps. Entries fold into the
// §8 recompilation digests (hash_codegen_inputs) and feed procedure
// cloning, side-effect widening, and the `fortd-alias-hazard` checker.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "ipa/call_graph.hpp"
#include "support/task_graph.hpp"

namespace fortd {

class ThreadPool;

/// One may-alias pair in a procedure's name space. Ordering and equality
/// use the (sorted) member names only; `via`/`loc` carry the provenance of
/// the first inducing call site for diagnostics and are not identity.
struct AliasPair {
  std::string a;  // lexicographically smaller member
  std::string b;
  std::string via;  // caller whose call site induced the pair
  SourceLoc loc;    // location of that call site

  static AliasPair make(std::string x, std::string y, std::string via_proc,
                        SourceLoc site_loc);

  bool operator<(const AliasPair& o) const {
    if (a != o.a) return a < o.a;
    return b < o.b;
  }
  bool operator==(const AliasPair& o) const { return a == o.a && b == o.b; }
};

/// Per-procedure may-alias pairs over formals and COMMON globals.
struct AliasMap {
  std::map<std::string, std::set<AliasPair>> pairs;

  /// The procedure's pair set, or nullptr when it has none.
  const std::set<AliasPair>* of(const std::string& proc) const;
  /// Whether `x` and `y` may alias in `proc` (order-insensitive).
  bool may_alias(const std::string& proc, const std::string& x,
                 const std::string& y) const;
  /// The stored pair for {x, y} in `proc` (with provenance), or nullptr.
  const AliasPair* find(const std::string& proc, const std::string& x,
                        const std::string& y) const;

  int total_pairs() const;
  /// Canonical textual dump (members + provenance), for invariance tests.
  std::string str() const;
};

/// FNV-1a digest of one procedure's alias entry (0 when absent/empty) —
/// mixed into the §8 recompilation digests so a changed alias environment
/// forces recompilation. Pure function of the canonical entry.
uint64_t hash_alias_entry(const AliasMap& am, const std::string& proc);

/// One procedure's pairs pulled from its call sites and its callers'
/// already-published entries. Pure: the union over sites is canonical, so
/// any schedule that publishes callers first computes the same entry.
std::set<AliasPair> pull_alias(const BoundProgram& program,
                               const AugmentedCallGraph& acg,
                               const AliasMap& am, const std::string& name);

/// Compute the full may-alias map top-down over the ACG. `scheduler`
/// selects depth-leveled wavefronts or the barrier-free work-stealing
/// TaskGraph (nodes depend on their callers); both produce entries
/// byte-identical to a serial run. `sched_stats`, when non-null,
/// accumulates the work-stealing run's counters.
AliasMap compute_alias_map(const BoundProgram& program,
                           const AugmentedCallGraph& acg,
                           ThreadPool* pool = nullptr,
                           Scheduler scheduler = Scheduler::WorkStealing,
                           TaskGraphStats* sched_stats = nullptr);

}  // namespace fortd
