#include "ipa/overlap_prop.hpp"

#include "ipa/side_effects.hpp"

namespace fortd {

const OverlapOffsets* OverlapEstimates::lookup(const std::string& proc,
                                               const std::string& var) const {
  auto pit = estimates.find(proc);
  if (pit == estimates.end()) return nullptr;
  auto vit = pit->second.find(var);
  if (vit == pit->second.end()) return nullptr;
  return &vit->second;
}

OverlapEstimates compute_overlap_estimates(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries) {
  OverlapEstimates est;

  // Bottom-up: merge local offsets with translated callee offsets.
  for (const std::string& name : acg.reverse_topological_order()) {
    auto& mine = est.estimates[name];
    auto sit = summaries.find(name);
    if (sit != summaries.end())
      for (const auto& [var, ov] : sit->second.overlaps) mine[var].merge(ov);
    for (const CallSiteInfo* site : acg.calls_from(name)) {
      const Procedure* callee = program.find(site->callee);
      if (!callee) continue;
      for (const auto& [var, ov] : est.estimates[site->callee]) {
        auto t = translate_to_caller(var, *callee, *site);
        if (t) mine[*t].merge(ov);
      }
    }
  }

  // Top-down: push the caller-side maxima back into callees so overlap
  // extents agree everywhere ("propagate resulting estimates down ACG").
  for (const std::string& name : acg.topological_order()) {
    const auto& mine = est.estimates[name];
    for (const CallSiteInfo* site : acg.calls_from(name)) {
      const Procedure* callee = program.find(site->callee);
      if (!callee) continue;
      auto& theirs = est.estimates[site->callee];
      // Formals: actual's estimate flows to the formal.
      for (size_t f = 0; f < callee->formals.size() && f < site->actuals.size();
           ++f) {
        const Expr* actual = site->actuals[f];
        if (actual->kind != ExprKind::VarRef) continue;
        auto it = mine.find(actual->name);
        if (it != mine.end()) theirs[callee->formals[f]].merge(it->second);
      }
      // Globals: merged by name.
      const SymbolTable& callee_st = program.symtab(site->callee);
      for (const auto& [var, ov] : mine) {
        const Symbol* sym = callee_st.lookup(var);
        if (sym && sym->is_global()) theirs[var].merge(ov);
      }
    }
  }
  return est;
}

}  // namespace fortd
