#include "ipa/side_effects.hpp"

namespace fortd {

std::set<std::string> SideEffects::appear(const std::string& proc,
                                          const BoundProgram& program) const {
  std::set<std::string> out;
  const Procedure* p = program.find(proc);
  const SymbolTable& st = program.symtab(proc);
  auto consider = [&](const std::set<std::string>& names) {
    for (const auto& n : names) {
      const Symbol* sym = st.lookup(n);
      if (!sym) continue;
      if (sym->formal_index >= 0 || sym->is_global()) out.insert(n);
    }
  };
  auto mit = gmod.find(proc);
  if (mit != gmod.end()) consider(mit->second);
  auto rit = gref.find(proc);
  if (rit != gref.end()) consider(rit->second);
  (void)p;
  return out;
}

std::optional<std::string> translate_to_caller(const std::string& callee_var,
                                               const Procedure& callee,
                                               const CallSiteInfo& site) {
  int fi = callee.formal_index(callee_var);
  if (fi >= 0) {
    if (fi >= static_cast<int>(site.actuals.size())) return std::nullopt;
    const Expr* actual = site.actuals[static_cast<size_t>(fi)];
    if (actual->kind == ExprKind::VarRef || actual->kind == ExprKind::ArrayRef)
      return actual->name;
    return std::nullopt;  // expression actual: no l-value to propagate to
  }
  // Globals keep their name across procedures (COMMON by matching names).
  return callee_var;
}

SideEffects compute_side_effects(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries) {
  SideEffects fx;
  for (const std::string& name : acg.reverse_topological_order()) {
    const ProcSummary& sum = summaries.at(name);
    std::set<std::string> mod = sum.mod;
    std::set<std::string> ref = sum.ref;
    std::map<std::string, RsdList> defs = sum.defs;
    std::map<std::string, RsdList> uses = sum.uses;

    for (const CallSiteInfo* site : acg.calls_from(name)) {
      const Procedure* callee = program.find(site->callee);
      if (!callee) continue;
      auto add_names = [&](const std::set<std::string>& src,
                           std::set<std::string>& dst) {
        for (const auto& v : src) {
          auto t = translate_to_caller(v, *callee, *site);
          if (t) dst.insert(*t);
        }
      };
      add_names(fx.gmod[site->callee], mod);
      add_names(fx.gref[site->callee], ref);

      auto add_sections = [&](const std::map<std::string, RsdList>& src,
                              std::map<std::string, RsdList>& dst) {
        for (const auto& [v, list] : src) {
          auto t = translate_to_caller(v, *callee, *site);
          if (!t) continue;
          // Only propagate sections to a variable of matching rank; a
          // reshaped actual falls back to the whole declared section.
          const Symbol* sym = program.symtab(name).lookup(*t);
          if (!sym || !sym->is_array()) continue;
          for (const Rsd& r : list.sections()) {
            if (r.rank() == sym->rank())
              dst[*t].add_coalescing(r);
            else
              dst[*t].add_coalescing(sym->full_section());
          }
        }
      };
      add_sections(fx.gdefs[site->callee], defs);
      add_sections(fx.guses[site->callee], uses);
    }
    fx.gmod[name] = std::move(mod);
    fx.gref[name] = std::move(ref);
    fx.gdefs[name] = std::move(defs);
    fx.guses[name] = std::move(uses);
  }
  return fx;
}

}  // namespace fortd
