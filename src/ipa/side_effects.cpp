#include "ipa/side_effects.hpp"

#include "support/thread_pool.hpp"

namespace fortd {

std::set<std::string> SideEffects::appear(const std::string& proc,
                                          const BoundProgram& program) const {
  std::set<std::string> out;
  const Procedure* p = program.find(proc);
  const SymbolTable& st = program.symtab(proc);
  auto consider = [&](const std::set<std::string>& names) {
    for (const auto& n : names) {
      const Symbol* sym = st.lookup(n);
      if (!sym) continue;
      if (sym->formal_index >= 0 || sym->is_global()) out.insert(n);
    }
  };
  auto mit = gmod.find(proc);
  if (mit != gmod.end()) consider(mit->second);
  auto rit = gref.find(proc);
  if (rit != gref.end()) consider(rit->second);
  (void)p;
  return out;
}

std::optional<std::string> translate_to_caller(const std::string& callee_var,
                                               const Procedure& callee,
                                               const CallSiteInfo& site) {
  int fi = callee.formal_index(callee_var);
  if (fi >= 0) {
    if (fi >= static_cast<int>(site.actuals.size())) return std::nullopt;
    const Expr* actual = site.actuals[static_cast<size_t>(fi)];
    if (actual->kind == ExprKind::VarRef || actual->kind == ExprKind::ArrayRef)
      return actual->name;
    return std::nullopt;  // expression actual: no l-value to propagate to
  }
  // Globals keep their name across procedures (COMMON by matching names).
  return callee_var;
}

ProcEffects compute_proc_effects(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries, const SideEffects& fx,
    const std::string& name, const AliasMap* aliases) {
  const ProcSummary& sum = summaries.at(name);
  ProcEffects out;
  out.mod = sum.mod;
  out.ref = sum.ref;
  out.defs = sum.defs;
  out.uses = sum.uses;

  // Callee lookups are const (find, not operator[]): in the wavefront
  // schedule several procedures of one level read `fx` concurrently.
  auto names_of = [](const std::map<std::string, std::set<std::string>>& m,
                     const std::string& k) -> const std::set<std::string>* {
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  };
  auto sections_of =
      [](const std::map<std::string, std::map<std::string, RsdList>>& m,
         const std::string& k) -> const std::map<std::string, RsdList>* {
    auto it = m.find(k);
    return it == m.end() ? nullptr : &it->second;
  };

  for (const CallSiteInfo* site : acg.calls_from(name)) {
    const Procedure* callee = program.find(site->callee);
    if (!callee) continue;
    auto add_names = [&](const std::set<std::string>* src,
                         std::set<std::string>& dst) {
      if (!src) return;
      for (const auto& v : *src) {
        auto t = translate_to_caller(v, *callee, *site);
        if (t) dst.insert(*t);
      }
    };
    add_names(names_of(fx.gmod, site->callee), out.mod);
    add_names(names_of(fx.gref, site->callee), out.ref);

    auto add_sections = [&](const std::map<std::string, RsdList>* src,
                            std::map<std::string, RsdList>& dst) {
      if (!src) return;
      for (const auto& [v, list] : *src) {
        auto t = translate_to_caller(v, *callee, *site);
        if (!t) continue;
        // Only propagate sections to a variable of matching rank; a
        // reshaped actual falls back to the whole declared section.
        const Symbol* sym = program.symtab(name).lookup(*t);
        if (!sym || !sym->is_array()) continue;
        for (const Rsd& r : list.sections()) {
          if (r.rank() == sym->rank())
            dst[*t].add_coalescing(r);
          else
            dst[*t].add_coalescing(sym->full_section());
        }
      }
    };
    add_sections(sections_of(fx.gdefs, site->callee), out.defs);
    add_sections(sections_of(fx.guses, site->callee), out.uses);
  }

  // Alias widening (§6.4): an access through one member of a may-alias
  // pair may touch the other's storage. One pass over the pair set against
  // a snapshot of the membership — may-alias is not transitive, so pairs
  // newly satisfied by widening must not chain.
  const std::set<AliasPair>* pairs = aliases ? aliases->of(name) : nullptr;
  if (pairs) {
    const SymbolTable& st = program.symtab(name);
    auto widen_names = [&](std::set<std::string>& s) {
      std::vector<std::string> add;
      for (const AliasPair& p : *pairs) {
        if (s.count(p.a)) add.push_back(p.b);
        if (s.count(p.b)) add.push_back(p.a);
      }
      s.insert(add.begin(), add.end());
    };
    widen_names(out.mod);
    widen_names(out.ref);
    // Sections: the relative offset between the two views is unknown in
    // general, so the widened member gets its whole declared section.
    auto widen_sections = [&](std::map<std::string, RsdList>& m) {
      std::vector<std::string> add;
      for (const AliasPair& p : *pairs) {
        if (m.count(p.a)) add.push_back(p.b);
        if (m.count(p.b)) add.push_back(p.a);
      }
      for (const std::string& v : add) {
        const Symbol* sym = st.lookup(v);
        if (sym && sym->is_array() && sym->dims_const)
          m[v].add_coalescing(sym->full_section());
      }
    };
    widen_sections(out.defs);
    widen_sections(out.uses);
  }
  return out;
}

namespace {

/// The depth-leveled baseline (PR 2): a level's callees were all
/// published by earlier levels, so the level's dirty procedures are
/// independent. Results go into slots and are published at the level
/// barrier in level order. Kept behind Scheduler::Wavefront as the
/// measurable barrier baseline and the parity reference.
void update_side_effects_wavefront(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries,
    const std::set<std::string>& dirty, SideEffects& fx, ThreadPool* pool,
    const AliasMap* aliases) {
  const auto& procs = program.ast.procedures;
  for (const std::vector<int>& level : acg.wavefront_levels()) {
    std::vector<int> pending;
    for (int idx : level)
      if (dirty.count(procs[static_cast<size_t>(idx)]->name))
        pending.push_back(idx);
    if (pending.empty()) continue;
    std::vector<ProcEffects> slots(pending.size());
    auto one = [&](size_t k) {
      slots[k] = compute_proc_effects(
          program, acg, summaries, fx,
          procs[static_cast<size_t>(pending[k])]->name, aliases);
    };
    if (pool && pending.size() > 1) {
      pool->parallel_for(pending.size(), one);
    } else {
      for (size_t k = 0; k < pending.size(); ++k) one(k);
    }
    for (size_t k = 0; k < pending.size(); ++k) {
      const std::string& name = procs[static_cast<size_t>(pending[k])]->name;
      fx.gmod[name] = std::move(slots[k].mod);
      fx.gref[name] = std::move(slots[k].ref);
      fx.gdefs[name] = std::move(slots[k].defs);
      fx.guses[name] = std::move(slots[k].uses);
    }
  }
}

}  // namespace

void update_side_effects(const BoundProgram& program,
                         const AugmentedCallGraph& acg,
                         const std::map<std::string, ProcSummary>& summaries,
                         const std::set<std::string>& dirty, SideEffects& fx,
                         ThreadPool* pool, Scheduler scheduler,
                         TaskGraphStats* sched_stats, const AliasMap* aliases) {
  if (scheduler == Scheduler::Wavefront) {
    update_side_effects_wavefront(program, acg, summaries, dirty, fx, pool,
                                  aliases);
    return;
  }
  // Barrier-free: one graph node per procedure in reverse topological
  // order (a valid topological order of the callee→caller dependency
  // edges), each dirty node recomputing its entries the moment its own
  // callees are published — not when a whole depth level is. The four
  // maps are pre-sized with every dirty name before the run, so a task
  // publishes by assigning mapped values in place: concurrent tasks
  // touch disjoint entries and never mutate map structure, and callee
  // reads (const find in compute_proc_effects) are ordered after the
  // callee's write by the dependency edge. The final maps are a
  // per-procedure function of the callee entries, so every schedule —
  // including the serial index-order walk — produces identical maps.
  const auto& procs = program.ast.procedures;
  const std::vector<int> order = acg.reverse_topological_indices();
  std::vector<size_t> node_of(procs.size(), 0);
  for (size_t k = 0; k < order.size(); ++k)
    node_of[static_cast<size_t>(order[k])] = k;

  TaskGraph graph(order.size());
  for (size_t k = 0; k < order.size(); ++k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    for (const CallSiteInfo* site : acg.calls_from(name)) {
      const int callee = acg.procedure_index(site->callee);
      if (callee >= 0)
        graph.add_dependency(k, node_of[static_cast<size_t>(callee)]);
    }
  }
  for (const auto& proc : procs) {
    if (!dirty.count(proc->name)) continue;
    fx.gmod[proc->name];
    fx.gref[proc->name];
    fx.gdefs[proc->name];
    fx.guses[proc->name];
  }
  graph.run(pool, [&](size_t k) {
    const std::string& name = procs[static_cast<size_t>(order[k])]->name;
    if (!dirty.count(name)) return;  // carried over unchanged
    ProcEffects e =
        compute_proc_effects(program, acg, summaries, fx, name, aliases);
    fx.gmod[name] = std::move(e.mod);
    fx.gref[name] = std::move(e.ref);
    fx.gdefs[name] = std::move(e.defs);
    fx.guses[name] = std::move(e.uses);
  });
  if (sched_stats) *sched_stats += graph.stats();
}

SideEffects compute_side_effects(
    const BoundProgram& program, const AugmentedCallGraph& acg,
    const std::map<std::string, ProcSummary>& summaries, ThreadPool* pool,
    Scheduler scheduler, const AliasMap* aliases) {
  SideEffects fx;
  std::set<std::string> all;
  for (const auto& proc : program.ast.procedures) all.insert(proc->name);
  update_side_effects(program, acg, summaries, all, fx, pool, scheduler,
                      nullptr, aliases);
  return fx;
}

}  // namespace fortd
