#include "driver/compilation_cache.hpp"

#include "driver/compilation_db.hpp"
#include "frontend/ast_serialize.hpp"
#include "ipa/recompilation.hpp"
#include "ipa/summaries.hpp"
#include "ir/ir_serialize.hpp"
#include "support/compress.hpp"

namespace fortd {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void mix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_str(uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  mix(h, s.size());
}

}  // namespace

uint64_t hash_exports(const ProcExports& exports) {
  uint64_t h = kFnvOffset;
  mix_str(h, exports.iter_set.str());
  mix(h, exports.pending_comms.size());
  for (const auto& ev : exports.pending_comms) mix_str(h, ev.str());
  for (const auto& [array, sections] : exports.sym_defs) {
    mix_str(h, array);
    for (const auto& sec : sections) mix_str(h, sym_section_str(sec));
  }
  for (const auto& v : exports.decomp_use) mix_str(h, v);
  mix(h, exports.decomp_use.size());
  for (const auto& v : exports.decomp_kill) mix_str(h, v);
  mix(h, exports.decomp_kill.size());
  for (const auto& [spec, var] : exports.decomp_before) {
    mix_str(h, spec.str());
    mix_str(h, var);
  }
  for (const auto& [spec, var] : exports.decomp_after) {
    mix_str(h, spec.str());
    mix_str(h, var);
  }
  for (const auto& v : exports.scalar_mods) mix_str(h, v);
  mix(h, exports.contains_comm ? 1 : 0);
  for (const auto& [array, demand] : exports.shift_demand) {
    mix_str(h, array);
    mix(h, static_cast<uint64_t>(demand.first));
    mix(h, static_cast<uint64_t>(demand.second));
  }
  return h;
}

uint64_t hash_codegen_options(const CodegenOptions& options) {
  uint64_t h = kFnvOffset;
  mix(h, static_cast<uint64_t>(options.n_procs));
  mix(h, static_cast<uint64_t>(options.strategy));
  mix(h, static_cast<uint64_t>(options.dyn_decomp));
  mix(h, options.prefer_buffers ? 1 : 0);
  mix(h, options.parameterized_overlaps ? 1 : 0);
  mix(h, options.message_vectorization ? 1 : 0);
  // options.jobs deliberately excluded: the schedule must not change the
  // generated code, so serial and parallel compiles share cache entries.
  return h;
}

uint64_t procedure_digest(const Procedure& proc, const BoundProgram& program,
                          const IpaContext& ipa,
                          const OverlapEstimates& overlaps,
                          const CodegenOptions& options,
                          const std::map<std::string, ProcExports>& callee_exports) {
  uint64_t h = kFnvOffset;
  // Source identity: the same structural hash §8's recompilation record
  // uses for proc_hashes.
  auto sit = ipa.summaries.find(proc.name);
  mix(h, sit != ipa.summaries.end() ? sit->second.hash
                                    : hash_procedure(proc));
  // Interprocedural inputs (Reaching, overlap estimates, callee interface
  // summaries, run-time fallback) — shared with input_hashes.
  mix(h, hash_codegen_inputs(proc.name, ipa, overlaps));
  mix(h, hash_codegen_options(options));
  // Callee exports: generation consumes the *compiled* interface of each
  // callee (pending comms, iteration sets, decomp summary sets), which is
  // finer-grained than the static interface summary. Call sites enumerate
  // in deterministic site order.
  for (const CallSiteInfo* site : ipa.acg.calls_from(proc.name)) {
    mix_str(h, site->callee);
    auto it = callee_exports.find(site->callee);
    if (it != callee_exports.end()) mix(h, hash_exports(it->second));
    // Formal names scope the exported symbolic sections; translation in
    // the caller depends on them.
    if (const Procedure* callee = program.find(site->callee)) {
      for (const auto& f : callee->formals) mix_str(h, f);
      mix(h, callee->formals.size());
    }
  }
  return h;
}

// ---------------------------------------------------------------------------
// Persistent artifact codec (kind "proc")
// ---------------------------------------------------------------------------

const char kProcArtifactKind[] = "proc";

uint64_t proc_artifact_format_hash() {
  uint64_t h = kFnvOffset;
  mix_str(h, kProcArtifactKind);
  mix(h, kSerializeFormatVersion);
  mix(h, kCompressFormatVersion);
  return h;
}

namespace {

void write_affine(BinaryWriter& w, const AffineForm& f) {
  w.count(f.coeffs.size());
  for (const auto& [var, coeff] : f.coeffs) {
    w.str(var);
    w.i64(coeff);
  }
  w.i64(f.konst);
}

AffineForm read_affine(BinaryReader& r) {
  AffineForm f;
  size_t n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string var = r.str();
    f.coeffs[var] = r.i64();
  }
  f.konst = r.i64();
  return f;
}

void write_sym_triplet(BinaryWriter& w, const SymTriplet& t) {
  write_affine(w, t.lb);
  write_affine(w, t.ub);
  w.i64(t.step);
}

SymTriplet read_sym_triplet(BinaryReader& r) {
  SymTriplet t;
  t.lb = read_affine(r);
  t.ub = read_affine(r);
  t.step = r.i64();
  return t;
}

void write_sym_section(BinaryWriter& w, const SymSection& s) {
  w.count(s.size());
  for (const SymTriplet& t : s) write_sym_triplet(w, t);
}

SymSection read_sym_section(BinaryReader& r) {
  SymSection s(r.count());
  for (SymTriplet& t : s) t = read_sym_triplet(r);
  return s;
}

void write_comm_event(BinaryWriter& w, const CommEvent& e) {
  w.u8(static_cast<uint8_t>(e.kind));
  w.str(e.array);
  write_decomp_spec(w, e.spec);
  w.count(e.bounds.size());
  for (const auto& [lo, hi] : e.bounds) {
    w.i64(lo);
    w.i64(hi);
  }
  w.i64(e.dist_dim);
  w.i64(e.shift);
  write_sym_section(w, e.section);
  write_affine(w, e.root_index);
  w.str(e.scalar);
  w.i64(e.hoisted_loops);
  w.i64(e.loc.line);
  w.i64(e.loc.col);
}

CommEvent read_comm_event(BinaryReader& r) {
  CommEvent e;
  uint8_t kind = r.u8();
  if (kind > static_cast<uint8_t>(CommEvent::Kind::ScalarBcast)) r.fail();
  else e.kind = static_cast<CommEvent::Kind>(kind);
  e.array = r.str();
  e.spec = read_decomp_spec(r);
  size_t n = r.count();
  e.bounds.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t lo = r.i64();
    int64_t hi = r.i64();
    e.bounds.emplace_back(lo, hi);
  }
  e.dist_dim = static_cast<int>(r.i64());
  e.shift = r.i64();
  e.section = read_sym_section(r);
  e.root_index = read_affine(r);
  e.scalar = r.str();
  e.hoisted_loops = static_cast<int>(r.i64());
  e.loc.line = static_cast<int>(r.i64());
  e.loc.col = static_cast<int>(r.i64());
  return e;
}

void write_iteration_set(BinaryWriter& w, const IterationSet& s) {
  w.u8(static_cast<uint8_t>(s.kind));
  const OwnershipConstraint& c = s.constraint;
  w.str(c.var);
  write_affine(w, c.fixed);
  w.str(c.array);
  w.i64(c.dim);
  w.i64(c.offset);
}

IterationSet read_iteration_set(BinaryReader& r) {
  IterationSet s;
  uint8_t kind = r.u8();
  if (kind > static_cast<uint8_t>(IterationSet::Kind::RuntimeOnly)) r.fail();
  else s.kind = static_cast<IterationSet::Kind>(kind);
  s.constraint.var = r.str();
  s.constraint.fixed = read_affine(r);
  s.constraint.array = r.str();
  s.constraint.dim = static_cast<int>(r.i64());
  s.constraint.offset = r.i64();
  return s;
}

void write_str_set(BinaryWriter& w, const std::set<std::string>& s) {
  w.count(s.size());
  for (const std::string& v : s) w.str(v);
}

std::set<std::string> read_str_set(BinaryReader& r) {
  std::set<std::string> s;
  size_t n = r.count();
  for (size_t i = 0; i < n; ++i) s.insert(r.str());
  return s;
}

void write_exports(BinaryWriter& w, const ProcExports& e) {
  write_iteration_set(w, e.iter_set);
  w.count(e.pending_comms.size());
  for (const CommEvent& ev : e.pending_comms) write_comm_event(w, ev);
  w.count(e.sym_defs.size());
  for (const auto& [array, sections] : e.sym_defs) {
    w.str(array);
    w.count(sections.size());
    for (const SymSection& s : sections) write_sym_section(w, s);
  }
  write_str_set(w, e.decomp_use);
  write_str_set(w, e.decomp_kill);
  w.count(e.decomp_before.size());
  for (const auto& [spec, var] : e.decomp_before) {
    write_decomp_spec(w, spec);
    w.str(var);
  }
  w.count(e.decomp_after.size());
  for (const auto& [spec, var] : e.decomp_after) {
    write_decomp_spec(w, spec);
    w.str(var);
  }
  write_str_set(w, e.scalar_mods);
  w.boolean(e.contains_comm);
  w.count(e.shift_demand.size());
  for (const auto& [array, demand] : e.shift_demand) {
    w.str(array);
    w.i64(demand.first);
    w.i64(demand.second);
  }
}

ProcExports read_exports(BinaryReader& r) {
  ProcExports e;
  e.iter_set = read_iteration_set(r);
  size_t n = r.count();
  e.pending_comms.reserve(n);
  for (size_t i = 0; i < n; ++i) e.pending_comms.push_back(read_comm_event(r));
  n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string array = r.str();
    size_t m = r.count();
    std::vector<SymSection> sections;
    sections.reserve(m);
    for (size_t k = 0; k < m; ++k) sections.push_back(read_sym_section(r));
    e.sym_defs[array] = std::move(sections);
  }
  e.decomp_use = read_str_set(r);
  e.decomp_kill = read_str_set(r);
  n = r.count();
  e.decomp_before.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DecompSpec spec = read_decomp_spec(r);
    e.decomp_before.emplace_back(std::move(spec), r.str());
  }
  n = r.count();
  e.decomp_after.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DecompSpec spec = read_decomp_spec(r);
    e.decomp_after.emplace_back(std::move(spec), r.str());
  }
  e.scalar_mods = read_str_set(r);
  e.contains_comm = r.boolean();
  n = r.count();
  for (size_t i = 0; i < n; ++i) {
    std::string array = r.str();
    int64_t lo = r.i64();
    int64_t hi = r.i64();
    e.shift_demand[array] = {lo, hi};
  }
  return e;
}

void write_storage_info(BinaryWriter& w, const ArrayStorageInfo& s) {
  w.str(s.array);
  write_decomp_spec(w, s.spec);
  w.i64(s.dist_dim);
  w.i64(s.local_extent);
  w.i64(s.other_extent);
  w.i64(s.overlap_lo);
  w.i64(s.overlap_hi);
  w.i64(s.est_lo);
  w.i64(s.est_hi);
  w.boolean(s.used_buffer);
  w.boolean(s.parameterized);
}

ArrayStorageInfo read_storage_info(BinaryReader& r) {
  ArrayStorageInfo s;
  s.array = r.str();
  s.spec = read_decomp_spec(r);
  s.dist_dim = static_cast<int>(r.i64());
  s.local_extent = r.i64();
  s.other_extent = r.i64();
  s.overlap_lo = r.i64();
  s.overlap_hi = r.i64();
  s.est_lo = r.i64();
  s.est_hi = r.i64();
  s.used_buffer = r.boolean();
  s.parameterized = r.boolean();
  return s;
}

void write_compile_stats(BinaryWriter& w, const CompileStats& s) {
  w.i64(s.clones_created);
  w.i64(s.vectorized_messages);
  w.i64(s.delayed_comms_exported);
  w.i64(s.delayed_comms_absorbed);
  w.i64(s.delayed_iter_sets_exported);
  w.i64(s.loops_bounds_reduced);
  w.i64(s.guards_inserted);
  w.i64(s.scalar_broadcasts);
  w.i64(s.runtime_resolved_stmts);
  w.i64(s.remaps_inserted);
  w.i64(s.remaps_eliminated_dead);
  w.i64(s.remaps_coalesced);
  w.i64(s.remaps_hoisted);
  w.i64(s.remaps_marked_in_place);
  w.i64(s.buffers_used);
}

CompileStats read_compile_stats(BinaryReader& r) {
  CompileStats s;
  s.clones_created = static_cast<int>(r.i64());
  s.vectorized_messages = static_cast<int>(r.i64());
  s.delayed_comms_exported = static_cast<int>(r.i64());
  s.delayed_comms_absorbed = static_cast<int>(r.i64());
  s.delayed_iter_sets_exported = static_cast<int>(r.i64());
  s.loops_bounds_reduced = static_cast<int>(r.i64());
  s.guards_inserted = static_cast<int>(r.i64());
  s.scalar_broadcasts = static_cast<int>(r.i64());
  s.runtime_resolved_stmts = static_cast<int>(r.i64());
  s.remaps_inserted = static_cast<int>(r.i64());
  s.remaps_eliminated_dead = static_cast<int>(r.i64());
  s.remaps_coalesced = static_cast<int>(r.i64());
  s.remaps_hoisted = static_cast<int>(r.i64());
  s.remaps_marked_in_place = static_cast<int>(r.i64());
  s.buffers_used = static_cast<int>(r.i64());
  return s;
}

}  // namespace

std::vector<uint8_t> serialize_cached_procedure(const CachedProcedure& entry) {
  BinaryWriter w;
  write_procedure(w, *entry.compiled);
  write_exports(w, entry.exports);
  w.count(entry.storage.size());
  for (const ArrayStorageInfo& s : entry.storage) write_storage_info(w, s);
  write_compile_stats(w, entry.stats);
  return w.take();
}

std::optional<CachedProcedure> deserialize_cached_procedure(
    const std::vector<uint8_t>& payload) {
  BinaryReader r(payload);
  CachedProcedure entry;
  std::unique_ptr<Procedure> proc = read_procedure(r);
  if (!proc || !r.ok()) return std::nullopt;
  entry.compiled = std::shared_ptr<const Procedure>(std::move(proc));
  entry.exports = read_exports(r);
  size_t n = r.count();
  entry.storage.reserve(n);
  for (size_t i = 0; i < n; ++i) entry.storage.push_back(read_storage_info(r));
  entry.stats = read_compile_stats(r);
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return entry;
}

// ---------------------------------------------------------------------------
// Two-tier cache
// ---------------------------------------------------------------------------

std::shared_ptr<const CachedProcedure> CompilationCache::lookup(
    uint64_t digest) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(digest);
    if (it != entries_.end()) {
      ++hits_;
      return it->second;
    }
  }
  if (store_) {
    if (auto payload =
            store_->load(kProcArtifactKind, proc_artifact_format_hash(), digest)) {
      if (auto entry = deserialize_cached_procedure(*payload)) {
        auto sp = std::make_shared<const CachedProcedure>(std::move(*entry));
        std::lock_guard<std::mutex> lock(mu_);
        entries_[digest] = sp;
        ++hits_;
        return sp;
      }
      // Envelope checks passed but the payload would not decode: a codec
      // bug or a digest collision. Treat exactly like disk corruption.
      store_->mark_corrupt(kProcArtifactKind, digest);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++misses_;
  return nullptr;
}

void CompilationCache::insert(uint64_t digest, CachedProcedure entry) {
  if (store_)
    store_->store(kProcArtifactKind, proc_artifact_format_hash(), digest,
                  serialize_cached_procedure(entry));
  std::lock_guard<std::mutex> lock(mu_);
  entries_[digest] =
      std::make_shared<const CachedProcedure>(std::move(entry));
}

size_t CompilationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void CompilationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fortd
