#include "driver/compilation_cache.hpp"

#include "ipa/recompilation.hpp"
#include "ipa/summaries.hpp"

namespace fortd {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void mix(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_str(uint64_t& h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  mix(h, s.size());
}

}  // namespace

uint64_t hash_exports(const ProcExports& exports) {
  uint64_t h = kFnvOffset;
  mix_str(h, exports.iter_set.str());
  mix(h, exports.pending_comms.size());
  for (const auto& ev : exports.pending_comms) mix_str(h, ev.str());
  for (const auto& [array, sections] : exports.sym_defs) {
    mix_str(h, array);
    for (const auto& sec : sections) mix_str(h, sym_section_str(sec));
  }
  for (const auto& v : exports.decomp_use) mix_str(h, v);
  mix(h, exports.decomp_use.size());
  for (const auto& v : exports.decomp_kill) mix_str(h, v);
  mix(h, exports.decomp_kill.size());
  for (const auto& [spec, var] : exports.decomp_before) {
    mix_str(h, spec.str());
    mix_str(h, var);
  }
  for (const auto& [spec, var] : exports.decomp_after) {
    mix_str(h, spec.str());
    mix_str(h, var);
  }
  for (const auto& v : exports.scalar_mods) mix_str(h, v);
  mix(h, exports.contains_comm ? 1 : 0);
  for (const auto& [array, demand] : exports.shift_demand) {
    mix_str(h, array);
    mix(h, static_cast<uint64_t>(demand.first));
    mix(h, static_cast<uint64_t>(demand.second));
  }
  return h;
}

uint64_t hash_codegen_options(const CodegenOptions& options) {
  uint64_t h = kFnvOffset;
  mix(h, static_cast<uint64_t>(options.n_procs));
  mix(h, static_cast<uint64_t>(options.strategy));
  mix(h, static_cast<uint64_t>(options.dyn_decomp));
  mix(h, options.prefer_buffers ? 1 : 0);
  mix(h, options.parameterized_overlaps ? 1 : 0);
  mix(h, options.message_vectorization ? 1 : 0);
  // options.jobs deliberately excluded: the schedule must not change the
  // generated code, so serial and parallel compiles share cache entries.
  return h;
}

uint64_t procedure_digest(const Procedure& proc, const BoundProgram& program,
                          const IpaContext& ipa,
                          const OverlapEstimates& overlaps,
                          const CodegenOptions& options,
                          const std::map<std::string, ProcExports>& callee_exports) {
  uint64_t h = kFnvOffset;
  // Source identity: the same structural hash §8's recompilation record
  // uses for proc_hashes.
  auto sit = ipa.summaries.find(proc.name);
  mix(h, sit != ipa.summaries.end() ? sit->second.hash
                                    : hash_procedure(proc));
  // Interprocedural inputs (Reaching, overlap estimates, callee interface
  // summaries, run-time fallback) — shared with input_hashes.
  mix(h, hash_codegen_inputs(proc.name, ipa, overlaps));
  mix(h, hash_codegen_options(options));
  // Callee exports: generation consumes the *compiled* interface of each
  // callee (pending comms, iteration sets, decomp summary sets), which is
  // finer-grained than the static interface summary. Call sites enumerate
  // in deterministic site order.
  for (const CallSiteInfo* site : ipa.acg.calls_from(proc.name)) {
    mix_str(h, site->callee);
    auto it = callee_exports.find(site->callee);
    if (it != callee_exports.end()) mix(h, hash_exports(it->second));
    // Formal names scope the exported symbolic sections; translation in
    // the caller depends on them.
    if (const Procedure* callee = program.find(site->callee)) {
      for (const auto& f : callee->formals) mix_str(h, f);
      mix(h, callee->formals.size());
    }
  }
  return h;
}

std::shared_ptr<const CachedProcedure> CompilationCache::lookup(
    uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(digest);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

void CompilationCache::insert(uint64_t digest, CachedProcedure entry) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[digest] =
      std::make_shared<const CachedProcedure>(std::move(entry));
}

size_t CompilationCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

void CompilationCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace fortd
