// fortd::Compiler — the public entry point to the library.
//
//   fortd::Compiler compiler(options);
//   fortd::CompileResult r = compiler.compile_source(fortran_d_text);
//   fortd::RunResult run = fortd::simulate(r.spmd);
//
// The result bundles the bound program (after interprocedural cloning),
// the interprocedural solution, and the generated SPMD program that the
// machine simulator executes and the pretty-printer renders.
#pragma once

#include <string_view>

#include "codegen/codegen.hpp"
#include "ipa/recompilation.hpp"
#include "machine/simulator.hpp"

namespace fortd {

struct CompileResult {
  BoundProgram program;  // post-cloning source program
  IpaContext ipa;
  OverlapEstimates overlaps;
  SpmdProgram spmd;
  /// Snapshot for recompilation analysis (§8).
  CompilationRecord record;
};

class Compiler {
public:
  explicit Compiler(CodegenOptions options = {}, IpaOptions ipa_options = {});

  /// Parse, bind, analyze, and generate SPMD code. Throws CompileError.
  CompileResult compile_source(std::string_view source);
  CompileResult compile(SourceProgram ast);

  const CodegenOptions& options() const { return options_; }

private:
  CodegenOptions options_;
  IpaOptions ipa_options_;
};

/// Convenience: compile and simulate in one call.
RunResult compile_and_run(std::string_view source,
                          const CodegenOptions& options = {},
                          CostModel cost_model = CostModel::ipsc860());

}  // namespace fortd
