// fortd::Compiler — the public entry point to the library.
//
//   fortd::Compiler compiler(options);
//   fortd::CompileResult r = compiler.compile_source(fortran_d_text);
//   fortd::RunResult run = fortd::simulate(r.spmd);
//
// The result bundles the bound program (after interprocedural cloning),
// the interprocedural solution, and the generated SPMD program that the
// machine simulator executes and the pretty-printer renders.
//
// A Compiler instance owns a content-hashed CompilationCache that
// persists across compile() calls: recompiling a program in which k
// procedures changed re-runs code generation for only those k plus the
// callers whose callee exports changed (the constructive form of §8's
// recompilation tests). Set options.jobs > 1 for wavefront-parallel code
// generation; output is byte-identical to the serial schedule.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "analysis/lint/lint.hpp"
#include "analysis/lint/spmd_verifier.hpp"
#include "codegen/codegen.hpp"
#include "driver/compilation_cache.hpp"
#include "driver/compilation_db.hpp"
#include "ipa/recompilation.hpp"
#include "ipa/summary_cache.hpp"
#include "machine/simulator.hpp"
#include "remote/shard_map.hpp"
#include "support/thread_pool.hpp"

namespace fortd {

/// Per-phase wall-clock timings and cache behaviour of one compile().
struct CompilerStats {
  double bind_ms = 0.0;
  double ipa_ms = 0.0;
  double overlap_ms = 0.0;
  double codegen_ms = 0.0;
  double total_ms = 0.0;
  int procedures = 0;        // procedures in the (post-cloning) program
  int generated = 0;         // ran through ProcGen this compile
  int cache_hits = 0;        // procedures cloned from the cache
  int cache_misses = 0;
  int wavefront_levels = 0;  // depth of the parallel schedule
  int jobs = 1;              // worker threads used

  // IPA phase counters (see IpaStats).
  int ipa_rounds = 0;              // cloning fixed-point iterations
  int ipa_rounds_incremental = 0;  // rounds served by dirty-set recompute
  int summaries_computed = 0;      // procedures that ran local analysis
  int summaries_cached = 0;        // served by the IpaSummaryCache
  int summaries_reused = 0;        // carried unchanged between rounds
  int effects_reused = 0;
  int reaching_reused = 0;

  // Lint / verification phase (zero unless LintOptions enables them).
  double lint_ms = 0.0;
  double verify_ms = 0.0;
  int lint_warnings = 0;
  int lint_notes = 0;
  int verify_unmatched = 0;  // SPMD messages with no partner

  // Persistent compilation-database tier (zero unless CacheOptions.dir is
  // set): ContentStore counter deltas for this compile().
  int disk_hits = 0;       // artifacts loaded from the cache directory
  int disk_misses = 0;
  int disk_corrupt = 0;    // quarantined truncated/bit-flipped/skewed blobs
  int disk_evictions = 0;  // blobs removed by LRU GC this compile

  // Remote cache tier (zero unless CacheOptions.remote_endpoint is set):
  // counter deltas for this compile().
  int remote_hits = 0;     // artifacts served by the fleet (and promoted)
  int remote_puts = 0;     // artifacts written through to the fleet
  int remote_errors = 0;   // failed request attempts (timeouts, resets)
  int remote_retries = 0;  // attempts beyond the first, per request
  bool remote_degraded = false;  // EVERY shard's breaker open: local-only

  // Sharded fleet + readiness-driven prefetch (PR 6/7).
  int remote_shards = 0;           // endpoints in the -cache-remote list
  int remote_shards_degraded = 0;  // shards whose breaker is open
  int prefetch_issued = 0;         // keys requested ahead of their need
  int prefetch_hits = 0;           // prefetched blobs that landed

  // Work-stealing scheduler counters (zero under Scheduler::Wavefront or
  // jobs == 1 inline runs of some passes): codegen + both IPA
  // propagation passes summed, except the per-pass idle split.
  long sched_tasks = 0;         // graph nodes executed
  long sched_stolen = 0;        // nodes taken from another worker's deque
  long sched_prefetch_tasks = 0;  // auxiliary prefetch batches executed
  int sched_ready_peak = 0;     // ready-queue high-water mark (any pass)
  int sched_critical_path = 0;  // longest dependency chain (codegen graph)
  double sched_idle_codegen_ms = 0.0;  // worker wait time, codegen graph
  double sched_idle_ipa_ms = 0.0;      // worker wait time, IPA graphs
};

struct CompileResult {
  BoundProgram program;  // post-cloning source program
  IpaContext ipa;
  OverlapEstimates overlaps;
  SpmdProgram spmd;
  /// Snapshot for recompilation analysis (§8).
  CompilationRecord record;
  /// Phase timings + cache counters for this compile.
  CompilerStats stats;
  /// Procedures that actually ran through code generation (cache hits
  /// excluded), in reverse topological order.
  std::vector<std::string> regenerated;
  /// Lint findings (empty unless LintOptions::analyze).
  LintReport lint;
  /// SPMD communication verification (empty unless
  /// LintOptions::verify_spmd).
  SpmdVerifyReport verify;
};

class Compiler {
public:
  /// `cache_options.dir`, when non-empty, opens the persistent
  /// compilation database there and makes both caches two-tier: a second
  /// Compiler (in this process or another) pointed at the same directory
  /// skips code generation and local analysis for every unchanged
  /// procedure.
  explicit Compiler(CodegenOptions options = {}, IpaOptions ipa_options = {},
                    LintOptions lint_options = {},
                    CacheOptions cache_options = {});

  /// Parse, bind, analyze, and generate SPMD code. Throws CompileError.
  CompileResult compile_source(std::string_view source);
  CompileResult compile(SourceProgram ast);

  const CodegenOptions& options() const { return options_; }

  /// The procedure cache shared by every compile() of this instance.
  CompilationCache& cache() { return cache_; }
  const CompilationCache& cache() const { return cache_; }

  /// The per-procedure summary cache (the IPA analogue of cache()).
  IpaSummaryCache& summary_cache() { return summary_cache_; }
  const IpaSummaryCache& summary_cache() const { return summary_cache_; }

  /// The persistent compilation database, or nullptr when CacheOptions
  /// left both the disk and remote tiers disabled.
  ContentStore* content_store() { return store_.get(); }
  const ContentStore* content_store() const { return store_.get(); }

  /// The remote cache tier — a one-or-many-shard fleet client — or
  /// nullptr when CacheOptions left remote_endpoint empty.
  remote::ShardedRemoteStore* remote_store() { return remote_store_.get(); }
  const remote::ShardedRemoteStore* remote_store() const {
    return remote_store_.get();
  }

  /// Cumulative cache counters of every tier — memory, disk, remote — as
  /// stable machine-readable JSON (fortdc -cache-stats-json).
  std::string cache_stats_json() const;

  /// The worker pool shared by IPA, code generation, and (through
  /// compile_and_run) the machine simulator. Created lazily with
  /// options().jobs - 1 workers — with jobs == 1 every batch runs inline
  /// on the caller, so the pool costs nothing.
  ThreadPool* pool();

  /// Use `pool` (not owned, must outlive this Compiler) instead of a
  /// private lazily-created one. The compile service injects one shared
  /// pool into every session's Compiler so concurrent requests split the
  /// machine's workers fairly rather than oversubscribing it with a pool
  /// per session. Safe because ThreadPool::parallel_for interleaves
  /// concurrent batches; callers must not grow a shared pool mid-flight
  /// (see ThreadPool::ensure_workers).
  void set_shared_pool(ThreadPool* pool) { shared_pool_ = pool; }

  /// Stats of the most recent compile(). Like last_lint_report(), this
  /// survives a CompileError: timings of the phases that ran and the
  /// cache/disk-tier counters are filled in before the error propagates,
  /// so fortdc -timings can report them after a failed compile.
  const CompilerStats& last_stats() const { return stats_; }

  /// Lint report of the most recent compile(). Populated before code
  /// generation runs, so it survives (and helps explain) a CompileError
  /// thrown by codegen — fortdc -analyze prints it in both cases. On a
  /// successful compile the SPMD verifier's findings are folded in too,
  /// so this is the uniform serialization of *all* findings (-lint-json).
  const LintReport& last_lint_report() const { return last_lint_; }

private:
  /// Warm the summary tier with one BATCH_GET per shard (structural
  /// hashes are known right after binding). No-op without a remote tier
  /// or with CacheOptions.prefetch off.
  void prefetch_summaries(const BoundProgram& program);

  CodegenOptions options_;
  IpaOptions ipa_options_;
  LintOptions lint_options_;
  LintReport last_lint_;
  // Declared before store_: ~ContentStore flushes pending writes through
  // the remote tier, so the client must be destroyed after the store.
  std::unique_ptr<remote::ShardedRemoteStore> remote_store_;
  std::unique_ptr<ContentStore> store_;  // null when both tiers disabled
  CompilationCache cache_;
  IpaSummaryCache summary_cache_;
  std::unique_ptr<ThreadPool> pool_;
  ThreadPool* shared_pool_ = nullptr;  // wins over pool_ when set
  CompilerStats stats_;
};

/// Convenience: compile and simulate in one call.
RunResult compile_and_run(std::string_view source,
                          const CodegenOptions& options = {},
                          CostModel cost_model = CostModel::ipsc860());

}  // namespace fortd
