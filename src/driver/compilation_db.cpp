#include "driver/compilation_db.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/compress.hpp"
#include "support/serialize.hpp"

namespace fs = std::filesystem;

namespace fortd {

namespace {

// Blob envelope: magic | format_hash | digest | comp_size | raw_size |
// LZ(payload) | fnv1a(LZ(payload)). All integers fixed-width
// little-endian so truncation checks are trivial; the checksum covers the
// compressed bytes, so envelope validation never pays a decompression.
constexpr uint8_t kMagic[4] = {'F', 'D', 'C', 'A'};
constexpr size_t kHeaderSize = 4 + 8 + 8 + 8 + 8;
constexpr size_t kTrailerSize = 8;

void put_u64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (i * 8)));
}

uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (i * 8);
  return v;
}

std::optional<std::vector<uint8_t>> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  if (in.bad()) return std::nullopt;
  return bytes;
}

/// Write-to-temp + atomic rename; false on any I/O failure.
bool write_file_atomic(const std::string& path,
                       const std::vector<uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::optional<uint64_t> parse_hex_digest(const std::string& name) {
  if (name.size() != 16) return std::nullopt;
  uint64_t v = 0;
  for (char c : name) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else return std::nullopt;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  return v;
}

}  // namespace

std::vector<std::pair<bool, std::vector<uint8_t>>>
StorageBackend::batch_get_blobs(
    uint64_t format_hash,
    const std::vector<std::pair<std::string, uint64_t>>& keys) {
  // Fallback for backends without a native bulk fetch: one round trip
  // per key. RemoteStore/ShardedRemoteStore override with BATCH_GET.
  std::vector<std::pair<bool, std::vector<uint8_t>>> out;
  out.reserve(keys.size());
  for (const auto& [kind, digest] : keys) {
    auto blob = get_blob(kind, format_hash, digest);
    if (blob)
      out.emplace_back(true, std::move(*blob));
    else
      out.emplace_back(false, std::vector<uint8_t>{});
  }
  return out;
}

std::vector<uint8_t> make_blob_envelope(uint64_t format_hash, uint64_t digest,
                                        const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> comp = compress_bytes(payload);
  std::vector<uint8_t> out;
  out.reserve(kHeaderSize + comp.size() + kTrailerSize);
  for (uint8_t b : kMagic) out.push_back(b);
  put_u64(out, format_hash);
  put_u64(out, digest);
  put_u64(out, comp.size());
  put_u64(out, payload.size());
  out.insert(out.end(), comp.begin(), comp.end());
  put_u64(out, fnv1a(comp.data(), comp.size()));
  return out;
}

std::optional<BlobInfo> inspect_blob_envelope(
    const std::vector<uint8_t>& blob) {
  if (blob.size() < kHeaderSize + kTrailerSize) return std::nullopt;
  if (std::memcmp(blob.data(), kMagic, 4) != 0) return std::nullopt;
  BlobInfo info;
  info.format_hash = get_u64(blob.data() + 4);
  info.digest = get_u64(blob.data() + 12);
  const uint64_t comp_size = get_u64(blob.data() + 20);
  info.raw_size = get_u64(blob.data() + 28);
  if (blob.size() != kHeaderSize + comp_size + kTrailerSize)
    return std::nullopt;
  const uint8_t* comp = blob.data() + kHeaderSize;
  if (get_u64(comp + comp_size) != fnv1a(comp, comp_size)) return std::nullopt;
  return info;
}

std::optional<std::vector<uint8_t>> open_blob_envelope(
    const std::vector<uint8_t>& blob, uint64_t format_hash, uint64_t digest) {
  auto info = inspect_blob_envelope(blob);
  if (!info || info->format_hash != format_hash || info->digest != digest)
    return std::nullopt;
  auto raw = decompress_bytes(blob.data() + kHeaderSize,
                              blob.size() - kHeaderSize - kTrailerSize);
  if (!raw || raw->size() != info->raw_size) return std::nullopt;
  return raw;
}

std::string ContentStore::hex_digest(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

bool ContentStore::valid_kind(const std::string& kind) {
  if (kind.empty() || kind.size() > 64) return false;
  if (kind == "." || kind == "..") return false;
  for (char c : kind) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

ContentStore::ContentStore(CacheOptions options)
    : options_(std::move(options)) {
  if (options_.dir.empty()) return;
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  std::lock_guard<std::mutex> lock(mu_);
  load_index_locked();
}

ContentStore::~ContentStore() { flush(); }

std::string ContentStore::blob_path(const std::string& kind,
                                    uint64_t digest) const {
  return options_.dir + "/" + kind + "/" + hex_digest(digest);
}

std::string ContentStore::index_path() const { return options_.dir + "/index"; }

void ContentStore::load_index_locked() {
  // Ticks come from the index file; the artifact population comes from a
  // filesystem scan, so a missing or stale index degrades gracefully
  // (unknown blobs get tick 0 and are first in line for eviction, index
  // entries whose files vanished are dropped).
  std::map<Key, uint64_t> ticks;
  if (auto bytes = read_file(index_path())) {
    std::istringstream in(
        std::string(bytes->begin(), bytes->end()));
    std::string tag;
    int version = 0;
    uint64_t next_tick = 1;
    if (in >> tag >> version >> next_tick && tag == "fortd-cache-index" &&
        version == 1) {
      next_tick_ = next_tick;
      std::string kind, hex;
      uint64_t size, tick;
      while (in >> kind >> hex >> size >> tick)
        if (auto digest = parse_hex_digest(hex))
          ticks[{kind, *digest}] = tick;
    }
  }

  std::error_code ec;
  for (const auto& kind_dir : fs::directory_iterator(options_.dir, ec)) {
    if (!kind_dir.is_directory(ec)) continue;
    const std::string kind = kind_dir.path().filename().string();
    if (!valid_kind(kind)) continue;  // foreign directories stay foreign
    for (const auto& file : fs::directory_iterator(kind_dir.path(), ec)) {
      if (!file.is_regular_file(ec)) continue;
      auto digest = parse_hex_digest(file.path().filename().string());
      if (!digest) continue;  // temp files, foreign junk
      Entry entry;
      entry.size = file.file_size(ec);
      if (ec) entry.size = 0;
      auto it = ticks.find({kind, *digest});
      entry.tick = it != ticks.end() ? it->second : 0;
      next_tick_ = std::max(next_tick_, entry.tick + 1);
      index_[{kind, *digest}] = entry;
    }
  }
}

void ContentStore::quarantine_locked(const std::string& kind,
                                     uint64_t digest) {
  ++counters_.corrupt;
  index_.erase({kind, digest});
  index_dirty_ = true;
  if (options_.read_only || options_.dir.empty()) return;
  std::error_code ec;
  fs::remove(blob_path(kind, digest), ec);
}

std::optional<std::vector<uint8_t>> ContentStore::local_blob_locked(
    const std::string& kind, uint64_t format_hash, uint64_t digest) {
  const Key key{kind, digest};

  if (auto pit = pending_.find(key); pit != pending_.end()) {
    auto info = inspect_blob_envelope(pit->second.blob);
    if (info && info->format_hash == format_hash && info->digest == digest)
      return pit->second.blob;
    // A pending blob written under a different format hash (never in
    // practice: one process runs one codec version).
    return std::nullopt;
  }

  if (options_.dir.empty()) return std::nullopt;
  auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  auto blob = read_file(blob_path(kind, digest));
  if (!blob) {
    // File vanished under us: plain miss, fix the index.
    index_.erase(it);
    index_dirty_ = true;
    return std::nullopt;
  }
  auto info = inspect_blob_envelope(*blob);
  if (!info || info->format_hash != format_hash || info->digest != digest) {
    // Truncation, bit flip, or version skew: quarantine the slot.
    quarantine_locked(kind, digest);
    return std::nullopt;
  }
  it->second.tick = next_tick_++;
  index_dirty_ = true;
  return blob;
}

std::optional<std::vector<uint8_t>> ContentStore::load(const std::string& kind,
                                                       uint64_t format_hash,
                                                       uint64_t digest) {
  if (options_.dir.empty() && !remote_) return std::nullopt;
  if (!valid_kind(kind)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.misses;
    return std::nullopt;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto blob = local_blob_locked(kind, format_hash, digest)) {
      if (auto payload = open_blob_envelope(*blob, format_hash, digest)) {
        ++counters_.hits;
        return payload;
      }
      // Checksum passed but the payload would not decompress to its
      // declared size: treat exactly like disk corruption.
      pending_.erase({kind, digest});
      quarantine_locked(kind, digest);
      ++counters_.misses;
      return std::nullopt;
    }
    // A wavefront prefetch may have landed this blob already: consume it
    // (count it as a remote hit — that is where the bytes came from) and
    // promote it like a synchronous remote hit would be.
    if (auto pf = prefetch_.find({kind, digest}); pf != prefetch_.end()) {
      std::vector<uint8_t> blob = std::move(pf->second);
      prefetch_.erase(pf);
      if (auto payload = open_blob_envelope(blob, format_hash, digest)) {
        ++counters_.remote_hits;
        if (!options_.read_only)
          pending_[{kind, digest}] = PendingBlob{std::move(blob), true};
        return payload;
      }
      // Envelope was vetted at prefetch time, so only a decompression
      // failure lands here; fall through to the synchronous remote path.
      ++counters_.corrupt;
    }
  }

  // Local miss: consult the remote tier outside the lock (a network
  // round-trip must not serialize concurrent codegen workers behind mu_).
  if (remote_) {
    if (auto blob = remote_->get_blob(kind, format_hash, digest)) {
      if (auto payload = open_blob_envelope(*blob, format_hash, digest)) {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.remote_hits;
        // Promote: the enveloped bytes land in the local tier at the next
        // flush (and serve repeat loads from the pending buffer). A
        // read-only store never flushes, so buffering there would only
        // grow pending_ without bound — skip promotion entirely.
        if (!options_.read_only)
          pending_[{kind, digest}] = PendingBlob{std::move(*blob), true};
        return payload;
      }
      // The daemon sent bytes that fail validation: count it, fall
      // through to a miss (nothing local to quarantine).
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.corrupt;
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.misses;
  return std::nullopt;
}

std::optional<std::vector<uint8_t>> ContentStore::load_blob(
    const std::string& kind, uint64_t format_hash, uint64_t digest) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!valid_kind(kind)) {
    ++counters_.misses;
    return std::nullopt;
  }
  if (auto blob = local_blob_locked(kind, format_hash, digest)) {
    ++counters_.hits;
    return blob;
  }
  ++counters_.misses;
  return std::nullopt;
}

void ContentStore::store(const std::string& kind, uint64_t format_hash,
                         uint64_t digest, std::vector<uint8_t> payload) {
  if (options_.read_only) return;
  if (options_.dir.empty() && !remote_) return;
  if (!valid_kind(kind)) return;  // dropped write, never a path component
  std::vector<uint8_t> blob = make_blob_envelope(format_hash, digest, payload);
  std::lock_guard<std::mutex> lock(mu_);
  pending_[{kind, digest}] = PendingBlob{std::move(blob), false};
}

void ContentStore::store_blob(const std::string& kind, uint64_t digest,
                              std::vector<uint8_t> blob) {
  if (options_.read_only) return;
  if (options_.dir.empty() && !remote_) return;
  if (!valid_kind(kind)) return;  // dropped write, never a path component
  std::lock_guard<std::mutex> lock(mu_);
  pending_[{kind, digest}] = PendingBlob{std::move(blob), true};
}

bool ContentStore::has_remote() const {
  std::lock_guard<std::mutex> lock(mu_);
  return remote_ != nullptr;
}

std::vector<std::vector<uint64_t>> ContentStore::prefetch_groups(
    const std::string& kind, const std::vector<uint64_t>& digests) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!remote_ || !valid_kind(kind)) return {};
  std::vector<std::vector<uint64_t>> groups(remote_->shard_count());
  for (uint64_t digest : digests) {
    const Key key{kind, digest};
    if (pending_.count(key) || prefetch_.count(key) || index_.count(key))
      continue;  // a local tier already holds it
    if (!prefetch_requested_.insert(key).second) continue;  // asked before
    groups[remote_->shard_of(kind, digest)].push_back(digest);
  }
  // Drop empty shards so callers schedule exactly one task per BATCH_GET.
  std::vector<std::vector<uint64_t>> out;
  for (auto& g : groups)
    if (!g.empty()) out.push_back(std::move(g));
  return out;
}

size_t ContentStore::prefetch(const std::string& kind, uint64_t format_hash,
                              const std::vector<uint64_t>& digests) {
  if (digests.empty() || !valid_kind(kind)) return 0;
  StorageBackend* remote;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!remote_) return 0;
    remote = remote_;
    counters_.prefetch_issued += digests.size();
  }
  std::vector<std::pair<std::string, uint64_t>> keys;
  keys.reserve(digests.size());
  for (uint64_t digest : digests) keys.emplace_back(kind, digest);

  // The network round trip runs without mu_ so concurrent load()/store()
  // (the level-k codegen this prefetch overlaps with) never stall on it.
  auto results = remote->batch_get_blobs(format_hash, keys);
  if (results.size() != keys.size()) return 0;

  size_t landed = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < keys.size(); ++i) {
    auto& [found, blob] = results[i];
    if (!found) continue;
    auto info = inspect_blob_envelope(blob);
    if (!info || info->format_hash != format_hash ||
        info->digest != keys[i].second) {
      ++counters_.corrupt;  // wire damage or a confused daemon
      continue;
    }
    const Key key{kind, keys[i].second};
    if (pending_.count(key)) continue;  // raced with a synchronous load
    prefetch_[key] = std::move(blob);
    ++landed;
  }
  counters_.prefetch_hits += landed;
  return landed;
}

void ContentStore::mark_corrupt(const std::string& kind, uint64_t digest) {
  if (options_.dir.empty() && !remote_) return;
  if (!valid_kind(kind)) return;
  std::lock_guard<std::mutex> lock(mu_);
  pending_.erase({kind, digest});
  quarantine_locked(kind, digest);
}

void ContentStore::flush() {
  if (options_.read_only) return;
  if (options_.dir.empty() && !remote_) return;
  std::vector<std::pair<Key, std::vector<uint8_t>>> to_put;
  {
    std::lock_guard<std::mutex> lock(mu_);
    flush_locked(remote_ ? &to_put : nullptr);
  }
  // Write-through to the daemon outside the lock; the client degrades
  // failures internally (circuit breaker), so this never blocks long.
  for (auto& [key, blob] : to_put)
    remote_->put_blob(key.first, key.second, blob);
}

void ContentStore::flush_locked(
    std::vector<std::pair<Key, std::vector<uint8_t>>>* to_put) {
  std::error_code ec;
  const bool local = !options_.dir.empty();
  for (auto& [key, pb] : pending_) {
    // Promotions came *from* the remote tier; don't echo them back.
    if (to_put && !pb.from_remote) to_put->emplace_back(key, pb.blob);
    if (!local) continue;
    fs::create_directories(options_.dir + "/" + key.first, ec);
    const std::string path = blob_path(key.first, key.second);
    if (!write_file_atomic(path, pb.blob)) continue;  // dropped write
    index_[key] = Entry{pb.blob.size(), next_tick_++};
    ++counters_.writes;
    index_dirty_ = true;
  }
  pending_.clear();
  if (!local) return;

  // LRU GC: evict oldest-tick artifacts until the size bound holds.
  if (options_.max_bytes > 0) {
    uint64_t total = 0;
    for (const auto& [key, entry] : index_) total += entry.size;
    while (total > options_.max_bytes && !index_.empty()) {
      auto victim = index_.begin();
      for (auto it = index_.begin(); it != index_.end(); ++it)
        if (it->second.tick < victim->second.tick) victim = it;
      fs::remove(blob_path(victim->first.first, victim->first.second), ec);
      total -= std::min(total, victim->second.size);
      index_.erase(victim);
      ++counters_.evictions;
      index_dirty_ = true;
    }
  }

  if (!index_dirty_) return;
  std::ostringstream out;
  out << "fortd-cache-index 1 " << next_tick_ << "\n";
  for (const auto& [key, entry] : index_)
    out << key.first << " " << hex_digest(key.second) << " " << entry.size
        << " " << entry.tick << "\n";
  const std::string text = out.str();
  if (write_file_atomic(index_path(),
                        std::vector<uint8_t>(text.begin(), text.end())))
    index_dirty_ = false;
}

void ContentStore::clear() {
  if (options_.dir.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.clear();
    prefetch_.clear();
    prefetch_requested_.clear();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::error_code ec;
  for (const auto& [key, entry] : index_)
    fs::remove(blob_path(key.first, key.second), ec);
  fs::remove(index_path(), ec);
  index_.clear();
  pending_.clear();
  prefetch_.clear();
  prefetch_requested_.clear();
  index_dirty_ = false;
}

ContentStore::Counters ContentStore::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t ContentStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = index_.size();
  for (const auto& [key, pb] : pending_)
    if (!index_.count(key)) ++n;
  return n;
}

}  // namespace fortd
