#include "driver/compiler.hpp"

#include "frontend/parser.hpp"

namespace fortd {

Compiler::Compiler(CodegenOptions options, IpaOptions ipa_options)
    : options_(options), ipa_options_(ipa_options) {}

CompileResult Compiler::compile_source(std::string_view source) {
  DiagnosticEngine diags;
  Parser parser(source, diags);
  return compile(parser.parse_unit());
}

CompileResult Compiler::compile(SourceProgram ast) {
  CompileResult result;
  result.program = bind_program(std::move(ast));
  result.ipa = run_ipa(result.program, ipa_options_);
  result.overlaps = compute_overlap_estimates(result.program, result.ipa.acg,
                                              result.ipa.summaries);
  result.spmd = generate_spmd(result.program, result.ipa, options_);
  result.record =
      make_compilation_record(result.program, result.ipa, result.overlaps);
  return result;
}

RunResult compile_and_run(std::string_view source, const CodegenOptions& options,
                          CostModel cost_model) {
  Compiler compiler(options);
  CompileResult r = compiler.compile_source(source);
  return simulate(r.spmd, cost_model);
}

}  // namespace fortd
