#include "driver/compiler.hpp"

#include <algorithm>
#include <chrono>

#include "frontend/parser.hpp"

namespace fortd {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Compiler::Compiler(CodegenOptions options, IpaOptions ipa_options,
                   LintOptions lint_options, CacheOptions cache_options)
    : options_(options), ipa_options_(ipa_options),
      lint_options_(std::move(lint_options)) {
  if (!cache_options.dir.empty()) {
    store_ = std::make_unique<ContentStore>(std::move(cache_options));
    cache_.attach_store(store_.get());
    summary_cache_.attach_store(store_.get());
  }
}

ThreadPool* Compiler::pool() {
  if (!pool_)
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.jobs) - 1);
  return pool_.get();
}

CompileResult Compiler::compile_source(std::string_view source) {
  DiagnosticEngine diags;
  Parser parser(source, diags);
  return compile(parser.parse_unit());
}

CompileResult Compiler::compile(SourceProgram ast) {
  const auto t_total = std::chrono::steady_clock::now();
  const uint64_t hits0 = cache_.hits();
  const uint64_t misses0 = cache_.misses();
  const ContentStore::Counters disk0 =
      store_ ? store_->counters() : ContentStore::Counters{};
  CompileResult result;

  // Shared by the success path and the CompileError unwind: cache and
  // disk-tier accounting stays meaningful after a failed compile (the
  // -timings analogue of last_lint_report()), and pending store writes
  // land on disk off the per-procedure hot path.
  auto finalize = [&] {
    result.stats.total_ms = ms_since(t_total);
    result.stats.cache_hits = static_cast<int>(cache_.hits() - hits0);
    result.stats.cache_misses = static_cast<int>(cache_.misses() - misses0);
    result.stats.jobs = options_.jobs < 1 ? 1 : options_.jobs;
    const IpaStats& is = result.ipa.stats;
    result.stats.ipa_rounds = is.rounds;
    result.stats.ipa_rounds_incremental = is.rounds_incremental;
    result.stats.summaries_computed = is.summaries_computed;
    result.stats.summaries_cached = is.summaries_cached;
    result.stats.summaries_reused = is.summaries_reused;
    result.stats.effects_reused = is.effects_reused;
    result.stats.reaching_reused = is.reaching_reused;
    if (store_) {
      store_->flush();
      const ContentStore::Counters d = store_->counters();
      result.stats.disk_hits = static_cast<int>(d.hits - disk0.hits);
      result.stats.disk_misses = static_cast<int>(d.misses - disk0.misses);
      result.stats.disk_corrupt = static_cast<int>(d.corrupt - disk0.corrupt);
      result.stats.disk_evictions =
          static_cast<int>(d.evictions - disk0.evictions);
    }
    stats_ = result.stats;
  };

  try {
    auto t = std::chrono::steady_clock::now();
    result.program = bind_program(std::move(ast));
    result.stats.bind_ms = ms_since(t);

    t = std::chrono::steady_clock::now();
    result.ipa = run_ipa(result.program, ipa_options_, pool(), &summary_cache_);
    result.stats.ipa_ms = ms_since(t);

    t = std::chrono::steady_clock::now();
    result.overlaps = compute_overlap_estimates(result.program, result.ipa.acg,
                                                result.ipa.summaries);
    result.stats.overlap_ms = ms_since(t);

    last_lint_ = LintReport{};
    if (lint_options_.analyze) {
      t = std::chrono::steady_clock::now();
      LintDriver linter(lint_options_);
      LintContext lint_ctx{result.program, result.ipa, result.overlaps,
                           options_};
      result.lint = linter.run(lint_ctx, pool());
      last_lint_ = result.lint;
      result.stats.lint_ms = ms_since(t);
      result.stats.lint_warnings = result.lint.warnings;
      result.stats.lint_notes = result.lint.notes;
    }

    t = std::chrono::steady_clock::now();
    CodeGenerator generator(result.program, result.ipa, options_, &cache_,
                            &result.overlaps, pool());
    result.spmd = generator.generate();
    result.regenerated = generator.generated_procedures();
    result.stats.codegen_ms = ms_since(t);

    if (lint_options_.verify_spmd) {
      t = std::chrono::steady_clock::now();
      result.verify = verify_spmd(result.spmd, pool());
      result.stats.verify_ms = ms_since(t);
      result.stats.verify_unmatched = result.verify.unmatched;
    }

    result.record =
        make_compilation_record(result.program, result.ipa, result.overlaps);

    result.stats.procedures =
        static_cast<int>(result.program.ast.procedures.size());
    result.stats.generated = static_cast<int>(result.regenerated.size());
    result.stats.wavefront_levels =
        static_cast<int>(result.ipa.acg.wavefront_levels().size());
  } catch (...) {
    finalize();
    throw;
  }
  finalize();
  return result;
}

RunResult compile_and_run(std::string_view source, const CodegenOptions& options,
                          CostModel cost_model) {
  Compiler compiler(options);
  CompileResult r = compiler.compile_source(source);
  // Reuse the compiler's pool for the simulated processors; Machine grows
  // it to cover options.n_procs concurrent processor bodies.
  Machine machine(cost_model, compiler.pool());
  return machine.run(r.spmd);
}

}  // namespace fortd
