#include "driver/compiler.hpp"

#include <algorithm>
#include <chrono>

#include "frontend/parser.hpp"

namespace fortd {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Compiler::Compiler(CodegenOptions options, IpaOptions ipa_options,
                   LintOptions lint_options)
    : options_(options), ipa_options_(ipa_options),
      lint_options_(std::move(lint_options)) {}

ThreadPool* Compiler::pool() {
  if (!pool_)
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.jobs) - 1);
  return pool_.get();
}

CompileResult Compiler::compile_source(std::string_view source) {
  DiagnosticEngine diags;
  Parser parser(source, diags);
  return compile(parser.parse_unit());
}

CompileResult Compiler::compile(SourceProgram ast) {
  const auto t_total = std::chrono::steady_clock::now();
  CompileResult result;

  auto t = std::chrono::steady_clock::now();
  result.program = bind_program(std::move(ast));
  result.stats.bind_ms = ms_since(t);

  t = std::chrono::steady_clock::now();
  result.ipa = run_ipa(result.program, ipa_options_, pool(), &summary_cache_);
  result.stats.ipa_ms = ms_since(t);

  t = std::chrono::steady_clock::now();
  result.overlaps = compute_overlap_estimates(result.program, result.ipa.acg,
                                              result.ipa.summaries);
  result.stats.overlap_ms = ms_since(t);

  last_lint_ = LintReport{};
  if (lint_options_.analyze) {
    t = std::chrono::steady_clock::now();
    LintDriver linter(lint_options_);
    LintContext lint_ctx{result.program, result.ipa, result.overlaps,
                         options_};
    result.lint = linter.run(lint_ctx, pool());
    last_lint_ = result.lint;
    result.stats.lint_ms = ms_since(t);
    result.stats.lint_warnings = result.lint.warnings;
    result.stats.lint_notes = result.lint.notes;
    // Keep the partially-filled stats visible if codegen throws below.
    stats_ = result.stats;
  }

  t = std::chrono::steady_clock::now();
  const uint64_t hits0 = cache_.hits();
  const uint64_t misses0 = cache_.misses();
  CodeGenerator generator(result.program, result.ipa, options_, &cache_,
                          &result.overlaps, pool());
  result.spmd = generator.generate();
  result.regenerated = generator.generated_procedures();
  result.stats.codegen_ms = ms_since(t);

  if (lint_options_.verify_spmd) {
    t = std::chrono::steady_clock::now();
    result.verify = verify_spmd(result.spmd, pool());
    result.stats.verify_ms = ms_since(t);
    result.stats.verify_unmatched = result.verify.unmatched;
  }

  result.record =
      make_compilation_record(result.program, result.ipa, result.overlaps);

  result.stats.total_ms = ms_since(t_total);
  result.stats.procedures =
      static_cast<int>(result.program.ast.procedures.size());
  result.stats.generated = static_cast<int>(result.regenerated.size());
  result.stats.cache_hits = static_cast<int>(cache_.hits() - hits0);
  result.stats.cache_misses = static_cast<int>(cache_.misses() - misses0);
  result.stats.wavefront_levels =
      static_cast<int>(result.ipa.acg.wavefront_levels().size());
  result.stats.jobs = options_.jobs < 1 ? 1 : options_.jobs;
  const IpaStats& is = result.ipa.stats;
  result.stats.ipa_rounds = is.rounds;
  result.stats.ipa_rounds_incremental = is.rounds_incremental;
  result.stats.summaries_computed = is.summaries_computed;
  result.stats.summaries_cached = is.summaries_cached;
  result.stats.summaries_reused = is.summaries_reused;
  result.stats.effects_reused = is.effects_reused;
  result.stats.reaching_reused = is.reaching_reused;
  stats_ = result.stats;
  return result;
}

RunResult compile_and_run(std::string_view source, const CodegenOptions& options,
                          CostModel cost_model) {
  Compiler compiler(options);
  CompileResult r = compiler.compile_source(source);
  // Reuse the compiler's pool for the simulated processors; Machine grows
  // it to cover options.n_procs concurrent processor bodies.
  Machine machine(cost_model, compiler.pool());
  return machine.run(r.spmd);
}

}  // namespace fortd
