#include "driver/compiler.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "frontend/parser.hpp"
#include "ipa/summaries.hpp"

namespace fortd {

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Compiler::Compiler(CodegenOptions options, IpaOptions ipa_options,
                   LintOptions lint_options, CacheOptions cache_options)
    : options_(options), ipa_options_(ipa_options),
      lint_options_(std::move(lint_options)) {
  if (!cache_options.remote_endpoint.empty()) {
    remote::RemoteOptions ropts;
    ropts.timeout_ms = cache_options.remote_timeout_ms;
    auto endpoints =
        remote::split_endpoint_list(cache_options.remote_endpoint);
    if (!endpoints.empty())
      remote_store_ =
          std::make_unique<remote::ShardedRemoteStore>(endpoints, ropts);
    // An empty/unparseable endpoint list degrades to local-only,
    // consistent with the remote tier's never-fail-the-compile contract
    // (individual bad endpoints degrade as shards, inside the store).
  }
  if (!cache_options.dir.empty() || remote_store_) {
    store_ = std::make_unique<ContentStore>(std::move(cache_options));
    if (remote_store_) store_->attach_remote(remote_store_.get());
    cache_.attach_store(store_.get());
    summary_cache_.attach_store(store_.get());
  }
}

ThreadPool* Compiler::pool() {
  if (shared_pool_) return shared_pool_;
  if (!pool_)
    pool_ = std::make_unique<ThreadPool>(std::max(1, options_.jobs) - 1);
  return pool_.get();
}

CompileResult Compiler::compile_source(std::string_view source) {
  DiagnosticEngine diags;
  Parser parser(source, diags);
  return compile(parser.parse_unit());
}

CompileResult Compiler::compile(SourceProgram ast) {
  const auto t_total = std::chrono::steady_clock::now();
  const uint64_t hits0 = cache_.hits();
  const uint64_t misses0 = cache_.misses();
  const ContentStore::Counters disk0 =
      store_ ? store_->counters() : ContentStore::Counters{};
  const remote::RemoteStore::Counters remote0 =
      remote_store_ ? remote_store_->counters()
                    : remote::RemoteStore::Counters{};
  CompileResult result;

  // Shared by the success path and the CompileError unwind: cache and
  // disk-tier accounting stays meaningful after a failed compile (the
  // -timings analogue of last_lint_report()), and pending store writes
  // land on disk off the per-procedure hot path.
  auto finalize = [&] {
    result.stats.total_ms = ms_since(t_total);
    result.stats.cache_hits = static_cast<int>(cache_.hits() - hits0);
    result.stats.cache_misses = static_cast<int>(cache_.misses() - misses0);
    result.stats.jobs = options_.jobs < 1 ? 1 : options_.jobs;
    const IpaStats& is = result.ipa.stats;
    result.stats.ipa_rounds = is.rounds;
    result.stats.ipa_rounds_incremental = is.rounds_incremental;
    result.stats.summaries_computed = is.summaries_computed;
    result.stats.summaries_cached = is.summaries_cached;
    result.stats.summaries_reused = is.summaries_reused;
    result.stats.effects_reused = is.effects_reused;
    result.stats.reaching_reused = is.reaching_reused;
    // Scheduler counters: the IPA share lands here (codegen's was added
    // right after generate(), which a CompileError may have skipped).
    result.stats.sched_tasks += static_cast<long>(is.sched.executed);
    result.stats.sched_stolen += static_cast<long>(is.sched.stolen);
    result.stats.sched_prefetch_tasks +=
        static_cast<long>(is.sched.aux_executed);
    if (static_cast<int>(is.sched.ready_peak) > result.stats.sched_ready_peak)
      result.stats.sched_ready_peak = static_cast<int>(is.sched.ready_peak);
    result.stats.sched_idle_ipa_ms = is.sched.idle_ms;
    if (store_) {
      store_->flush();
      const ContentStore::Counters d = store_->counters();
      result.stats.disk_hits = static_cast<int>(d.hits - disk0.hits);
      result.stats.disk_misses = static_cast<int>(d.misses - disk0.misses);
      result.stats.disk_corrupt = static_cast<int>(d.corrupt - disk0.corrupt);
      result.stats.disk_evictions =
          static_cast<int>(d.evictions - disk0.evictions);
      result.stats.remote_hits =
          static_cast<int>(d.remote_hits - disk0.remote_hits);
      result.stats.prefetch_issued =
          static_cast<int>(d.prefetch_issued - disk0.prefetch_issued);
      result.stats.prefetch_hits =
          static_cast<int>(d.prefetch_hits - disk0.prefetch_hits);
    }
    if (remote_store_) {
      const remote::RemoteStore::Counters r = remote_store_->counters();
      result.stats.remote_puts = static_cast<int>(r.puts - remote0.puts);
      result.stats.remote_errors = static_cast<int>(r.errors - remote0.errors);
      result.stats.remote_retries =
          static_cast<int>(r.retries - remote0.retries);
      result.stats.remote_degraded = remote_store_->degraded();
      result.stats.remote_shards =
          static_cast<int>(remote_store_->shard_count());
      int down = 0;
      for (bool d : remote_store_->shard_degraded()) down += d ? 1 : 0;
      result.stats.remote_shards_degraded = down;
    }
    stats_ = result.stats;
  };

  try {
    auto t = std::chrono::steady_clock::now();
    result.program = bind_program(std::move(ast));
    result.stats.bind_ms = ms_since(t);

    t = std::chrono::steady_clock::now();
    prefetch_summaries(result.program);
    result.ipa = run_ipa(result.program, ipa_options_, pool(), &summary_cache_);
    result.stats.ipa_ms = ms_since(t);

    t = std::chrono::steady_clock::now();
    result.overlaps = compute_overlap_estimates(result.program, result.ipa.acg,
                                                result.ipa.summaries);
    result.stats.overlap_ms = ms_since(t);

    last_lint_ = LintReport{};
    if (lint_options_.analyze) {
      t = std::chrono::steady_clock::now();
      LintDriver linter(lint_options_);
      LintContext lint_ctx{result.program, result.ipa, result.overlaps,
                           options_};
      result.lint = linter.run(lint_ctx, pool());
      last_lint_ = result.lint;
      result.stats.lint_ms = ms_since(t);
      result.stats.lint_warnings = result.lint.warnings;
      result.stats.lint_notes = result.lint.notes;
    }

    t = std::chrono::steady_clock::now();
    CodeGenerator generator(result.program, result.ipa, options_, &cache_,
                            &result.overlaps, pool());
    result.spmd = generator.generate();
    result.regenerated = generator.generated_procedures();
    result.stats.codegen_ms = ms_since(t);
    const TaskGraphStats& cg = generator.scheduler_stats();
    result.stats.sched_tasks = static_cast<long>(cg.executed);
    result.stats.sched_stolen = static_cast<long>(cg.stolen);
    result.stats.sched_prefetch_tasks = static_cast<long>(cg.aux_executed);
    result.stats.sched_ready_peak = static_cast<int>(cg.ready_peak);
    result.stats.sched_critical_path = static_cast<int>(cg.critical_path);
    result.stats.sched_idle_codegen_ms = cg.idle_ms;

    if (lint_options_.verify_spmd) {
      t = std::chrono::steady_clock::now();
      result.verify = verify_spmd(result.spmd, pool());
      result.stats.verify_ms = ms_since(t);
      result.stats.verify_unmatched = result.verify.unmatched;
      // Fold verifier findings into the surviving report so
      // last_lint_report() serializes every finding — lint and SPMD alike
      // — with uniform {id, level, line, col, message} records.
      last_lint_.append(result.verify.diags);
    }

    result.record =
        make_compilation_record(result.program, result.ipa, result.overlaps);

    result.stats.procedures =
        static_cast<int>(result.program.ast.procedures.size());
    result.stats.generated = static_cast<int>(result.regenerated.size());
    result.stats.wavefront_levels =
        static_cast<int>(result.ipa.acg.wavefront_levels().size());
  } catch (...) {
    finalize();
    throw;
  }
  finalize();
  return result;
}

void Compiler::prefetch_summaries(const BoundProgram& program) {
  // Warm the summary tier in one BATCH_GET per shard before local
  // analysis probes it procedure by procedure. The structural hashes are
  // computable right after binding (no interprocedural inputs), so this
  // replaces up to |procedures| synchronous remote round trips with
  // |shards| batched ones.
  if (!store_ || !store_->has_remote() || !store_->options().prefetch) return;
  std::vector<uint64_t> hashes;
  hashes.reserve(program.ast.procedures.size());
  for (const auto& proc : program.ast.procedures)
    hashes.push_back(hash_procedure(*proc));
  auto groups = store_->prefetch_groups(kSummaryArtifactKind, hashes);
  if (groups.empty()) return;
  const uint64_t fh = summary_artifact_format_hash();
  if (groups.size() > 1 && options_.jobs > 1) {
    // Shards are independent daemons: fetch them concurrently.
    pool()->parallel_for(groups.size(), [&](size_t i) {
      store_->prefetch(kSummaryArtifactKind, fh, groups[i]);
    });
  } else {
    for (const auto& g : groups)
      store_->prefetch(kSummaryArtifactKind, fh, g);
  }
}

std::string Compiler::cache_stats_json() const {
  const auto escape = [](const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20)
        out += ' ';
      else
        out += c;
    }
    return out;
  };
  std::ostringstream out;
  out << "{\"memory\":{\"proc_hits\":" << cache_.hits()
      << ",\"proc_misses\":" << cache_.misses()
      << ",\"proc_entries\":" << cache_.size()
      << ",\"summary_hits\":" << summary_cache_.hits()
      << ",\"summary_misses\":" << summary_cache_.misses()
      << ",\"summary_entries\":" << summary_cache_.size() << "}";
  if (store_) {
    const ContentStore::Counters d = store_->counters();
    out << ",\"disk\":{\"hits\":" << d.hits << ",\"misses\":" << d.misses
        << ",\"writes\":" << d.writes << ",\"evictions\":" << d.evictions
        << ",\"corrupt\":" << d.corrupt
        << ",\"remote_hits\":" << d.remote_hits
        << ",\"prefetch_issued\":" << d.prefetch_issued
        << ",\"prefetch_hits\":" << d.prefetch_hits << "}";
  }
  if (remote_store_) {
    const remote::RemoteStore::Counters r = remote_store_->counters();
    out << ",\"remote\":{\"gets\":" << r.gets << ",\"hits\":" << r.hits
        << ",\"puts\":" << r.puts << ",\"errors\":" << r.errors
        << ",\"retries\":" << r.retries
        << ",\"reconnects\":" << r.reconnects
        << ",\"oversize\":" << r.oversize
        << ",\"replica_hits\":" << r.replica_hits
        << ",\"failovers\":" << r.failovers
        << ",\"degraded\":" << (remote_store_->degraded() ? "true" : "false")
        << ",\"degraded_reason\":\""
        << escape(remote_store_->degraded_reason()) << "\""
        << ",\"shards\":[";
    const auto down = remote_store_->shard_degraded();
    for (size_t i = 0; i < remote_store_->shard_count(); ++i) {
      if (i) out << ",";
      out << "{\"endpoint\":\""
          << escape(remote_store_->shard_map().endpoint(i)) << "\""
          << ",\"degraded\":" << (down[i] ? "true" : "false") << "}";
    }
    out << "]}";
  }
  // Unlike the cache tiers (cumulative), the scheduler section reports
  // the most recent compile(): per-compile graphs are what the counters
  // describe.
  out << ",\"scheduler\":{\"tasks\":" << stats_.sched_tasks
      << ",\"stolen\":" << stats_.sched_stolen
      << ",\"prefetch_tasks\":" << stats_.sched_prefetch_tasks
      << ",\"ready_peak\":" << stats_.sched_ready_peak
      << ",\"critical_path\":" << stats_.sched_critical_path
      << ",\"idle_codegen_ms\":" << stats_.sched_idle_codegen_ms
      << ",\"idle_ipa_ms\":" << stats_.sched_idle_ipa_ms << "}";
  out << "}";
  return out.str();
}

RunResult compile_and_run(std::string_view source, const CodegenOptions& options,
                          CostModel cost_model) {
  Compiler compiler(options);
  CompileResult r = compiler.compile_source(source);
  // Reuse the compiler's pool for the simulated processors; Machine grows
  // it to cover options.n_procs concurrent processor bodies.
  Machine machine(cost_model, compiler.pool());
  return machine.run(r.spmd);
}

}  // namespace fortd
