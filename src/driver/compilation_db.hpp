// Persistent content-addressed compilation database (§8 across
// processes).
//
// The in-memory CompilationCache (generated SPMD procedures) and
// IpaSummaryCache (local analysis summaries) are thin first tiers over
// this ContentStore: artifacts are keyed by (kind, content digest) and
// live as individual blob files under
//
//   <dir>/<kind>/<16-hex-digit digest>
//
// so a *second compiler process* on an unchanged program finds every
// digest it computes already on disk and skips the corresponding work —
// the separate-compilation discipline the paper's recompilation analysis
// promises, realized with a build-database layout.
//
// Robustness contract:
//   * every blob carries an envelope (magic, format hash, digest, payload
//     size, payload checksum); any mismatch — truncation, bit flip,
//     version skew — makes load() return nullopt, count a corruption, and
//     quarantine (delete) the file so the slot is rewritten cleanly,
//   * writes are buffered in memory and flushed off the compilation hot
//     path (Compiler calls flush() once per compile()), each blob landing
//     via write-to-temp + atomic rename,
//   * an index file records per-artifact LRU ticks; when the store
//     exceeds max_bytes at flush time, least-recently-used artifacts are
//     evicted (their blob files deleted) until the bound holds.
//
// All operations are thread-safe and never throw past the store boundary:
// I/O errors degrade to misses (reads) or dropped writes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace fortd {

/// Driver-level knobs for the persistent tier (fortdc -cache-dir,
/// -cache-max-bytes). An empty dir disables the disk tier entirely.
struct CacheOptions {
  std::string dir;                       // empty = in-memory caches only
  uint64_t max_bytes = 256ull << 20;     // LRU GC bound (0 = unbounded)
  bool read_only = false;                // consult but never write/evict
};

class ContentStore {
public:
  explicit ContentStore(CacheOptions options);
  ~ContentStore();  // flush()es pending writes and the index

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  const CacheOptions& options() const { return options_; }

  /// The payload stored under (kind, digest), or nullopt on miss or on a
  /// corrupt/truncated/version-skewed blob (counted + quarantined).
  /// `format_hash` is the artifact codec's version stamp; a mismatch is
  /// treated as corruption (stale format), not a plain miss.
  std::optional<std::vector<uint8_t>> load(const std::string& kind,
                                           uint64_t format_hash,
                                           uint64_t digest);

  /// Buffer `payload` for persistence under (kind, digest). The blob
  /// reaches disk at the next flush(); load() sees it immediately.
  void store(const std::string& kind, uint64_t format_hash, uint64_t digest,
             std::vector<uint8_t> payload);

  /// Report (kind, digest) as undecodable at a layer above the envelope
  /// (payload deserialization failure): count + quarantine, as if the
  /// envelope check had failed.
  void mark_corrupt(const std::string& kind, uint64_t digest);

  /// Write pending blobs and the index to disk, then enforce max_bytes by
  /// LRU eviction. No-op in read-only mode.
  void flush();

  /// Delete every artifact and the index (fortdc -cache-clear).
  void clear();

  struct Counters {
    uint64_t hits = 0;       // load() served from disk or pending buffer
    uint64_t misses = 0;     // absent artifacts (corrupt loads also miss)
    uint64_t writes = 0;     // blobs flushed to disk
    uint64_t evictions = 0;  // blobs removed by LRU GC
    uint64_t corrupt = 0;    // envelope/codec validation failures
  };
  Counters counters() const;

  /// Artifacts currently known (on disk + pending).
  size_t size() const;

  static std::string hex_digest(uint64_t digest);

private:
  struct Entry {
    uint64_t size = 0;  // blob file size in bytes
    uint64_t tick = 0;  // LRU clock value of the last access
  };
  using Key = std::pair<std::string, uint64_t>;  // (kind, digest)

  std::string blob_path(const std::string& kind, uint64_t digest) const;
  std::string index_path() const;
  void load_index_locked();
  void quarantine_locked(const std::string& kind, uint64_t digest);
  void flush_locked();

  mutable std::mutex mu_;
  CacheOptions options_;
  std::map<Key, Entry> index_;
  std::map<Key, std::vector<uint8_t>> pending_;  // serialized blobs (with envelope)
  uint64_t next_tick_ = 1;
  Counters counters_;
  bool index_dirty_ = false;
};

}  // namespace fortd
