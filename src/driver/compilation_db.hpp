// Persistent content-addressed compilation database (§8 across
// processes).
//
// The in-memory CompilationCache (generated SPMD procedures) and
// IpaSummaryCache (local analysis summaries) are thin first tiers over
// this ContentStore: artifacts are keyed by (kind, content digest) and
// live as individual blob files under
//
//   <dir>/<kind>/<16-hex-digit digest>
//
// so a *second compiler process* on an unchanged program finds every
// digest it computes already on disk and skips the corresponding work —
// the separate-compilation discipline the paper's recompilation analysis
// promises, realized with a build-database layout.
//
// Robustness contract:
//   * every blob carries an envelope (magic, format hash, digest, payload
//     size, payload checksum); any mismatch — truncation, bit flip,
//     version skew — makes load() return nullopt, count a corruption, and
//     quarantine (delete) the file so the slot is rewritten cleanly,
//   * writes are buffered in memory and flushed off the compilation hot
//     path (Compiler calls flush() once per compile()), each blob landing
//     via write-to-temp + atomic rename,
//   * an index file records per-artifact LRU ticks; when the store
//     exceeds max_bytes at flush time, least-recently-used artifacts are
//     evicted (their blob files deleted) until the bound holds.
//
// Since PR 5 the payload inside the envelope is LZ-compressed
// (support/compress.hpp) and the ladder has an optional third tier: a
// StorageBackend (in practice remote/client.hpp's RemoteStore talking to
// a fortd-cached daemon) consulted after a local miss, with remote hits
// promoted into the local tier and local writes forwarded write-through.
// Backends exchange *enveloped* blobs, so the checksum that protects a
// blob at rest also protects it end-to-end across the wire.
//
// All operations are thread-safe and never throw past the store boundary:
// I/O errors degrade to misses (reads) or dropped writes.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace fortd {

/// Driver-level knobs for the persistent tier (fortdc -cache-dir,
/// -cache-max-bytes, -cache-remote). An empty dir disables the local disk
/// tier; an empty remote_endpoint disables the network tier; with both
/// empty the caches are purely in-memory.
struct CacheOptions {
  std::string dir;                       // empty = no local disk tier
  uint64_t max_bytes = 256ull << 20;     // LRU GC bound (0 = unbounded)
  bool read_only = false;                // consult but never write/evict
  /// Comma-separated "host:port" endpoints of fortd-cached daemons; more
  /// than one forms a consistent-hash sharded fleet (remote/shard_map.hpp).
  std::string remote_endpoint{};
  int remote_timeout_ms = 250;           // per-request network deadline
  bool prefetch = true;                  // wavefront BATCH_GET prefetch
};

/// A composable blob tier under the ContentStore. Implementations
/// exchange complete FDCA-enveloped blobs (see make_blob_envelope), so a
/// backend never needs to understand artifact payloads and every byte it
/// returns is checksum-validated by the caller. Implementations must be
/// thread-safe and must degrade failures to nullopt/false, never throw.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  /// The enveloped blob stored under (kind, digest), or nullopt on miss
  /// or failure. `format_hash` travels with the request so a backend
  /// holding stale-format blobs reads as a miss, not as corruption here.
  virtual std::optional<std::vector<uint8_t>> get_blob(
      const std::string& kind, uint64_t format_hash, uint64_t digest) = 0;

  /// Persist an enveloped blob (best effort; false = dropped).
  virtual bool put_blob(const std::string& kind, uint64_t digest,
                        const std::vector<uint8_t>& blob) = 0;

  /// Fetch many keys in as few round trips as the backend can manage:
  /// per-key (found, enveloped blob) results parallel to `keys`. The
  /// default loops get_blob; networked backends override with BATCH_GET.
  virtual std::vector<std::pair<bool, std::vector<uint8_t>>> batch_get_blobs(
      uint64_t format_hash,
      const std::vector<std::pair<std::string, uint64_t>>& keys);

  /// Sharding topology, so callers can group keys into one batch per
  /// shard. A monolithic backend is one shard holding every key.
  virtual size_t shard_count() const { return 1; }
  virtual size_t shard_of(const std::string& /*kind*/,
                          uint64_t /*digest*/) const {
    return 0;
  }
};

/// Build the FDCA on-disk/wire envelope around `payload`:
///   magic | format_hash | digest | comp_size | raw_size |
///   LZ(payload) | fnv1a(LZ(payload))
/// (fixed-width little-endian integers so truncation checks are trivial).
std::vector<uint8_t> make_blob_envelope(uint64_t format_hash, uint64_t digest,
                                        const std::vector<uint8_t>& payload);

/// Validate an envelope against the expected key and return the
/// decompressed payload; nullopt on any mismatch — bad magic, wrong
/// format hash, wrong digest, truncated or padded blob, checksum
/// failure, or a payload that does not decompress to its declared size.
std::optional<std::vector<uint8_t>> open_blob_envelope(
    const std::vector<uint8_t>& blob, uint64_t format_hash, uint64_t digest);

/// Header fields of a structurally valid envelope (magic, sizes, and
/// checksum verified; format hash NOT compared against anything). The
/// daemon uses this to vet incoming PUT blobs it cannot otherwise
/// interpret.
struct BlobInfo {
  uint64_t format_hash = 0;
  uint64_t digest = 0;
  uint64_t raw_size = 0;
};
std::optional<BlobInfo> inspect_blob_envelope(const std::vector<uint8_t>& blob);

class ContentStore {
public:
  explicit ContentStore(CacheOptions options);
  ~ContentStore();  // flush()es pending writes and the index

  ContentStore(const ContentStore&) = delete;
  ContentStore& operator=(const ContentStore&) = delete;

  const CacheOptions& options() const { return options_; }

  /// Attach the remote tier (unowned; may be null to detach). Consulted
  /// after a local miss; hits are promoted locally, flushed writes are
  /// forwarded. Call before compiling — not thread-safe against load().
  void attach_remote(StorageBackend* remote) { remote_ = remote; }

  /// The payload stored under (kind, digest), or nullopt on miss or on a
  /// corrupt/truncated/version-skewed blob (counted + quarantined).
  /// `format_hash` is the artifact codec's version stamp; a mismatch is
  /// treated as corruption (stale format), not a plain miss.
  std::optional<std::vector<uint8_t>> load(const std::string& kind,
                                           uint64_t format_hash,
                                           uint64_t digest);

  /// The complete *enveloped* blob for (kind, digest) from the local
  /// tiers only (pending buffer or disk; the remote tier is not
  /// consulted). Validated like load() but not decompressed — this is
  /// what the daemon serves over the wire byte-identically.
  std::optional<std::vector<uint8_t>> load_blob(const std::string& kind,
                                                uint64_t format_hash,
                                                uint64_t digest);

  /// Buffer `payload` for persistence under (kind, digest). The blob
  /// reaches disk at the next flush(); load() sees it immediately.
  void store(const std::string& kind, uint64_t format_hash, uint64_t digest,
             std::vector<uint8_t> payload);

  /// Buffer an already-enveloped blob under (kind, digest) — the daemon's
  /// PUT path, skipping the decompress/recompress round trip. The caller
  /// must have vetted the bytes via inspect_blob_envelope. The blob is
  /// never forwarded to an attached remote tier (it came from one).
  void store_blob(const std::string& kind, uint64_t digest,
                  std::vector<uint8_t> blob);

  /// Report (kind, digest) as undecodable at a layer above the envelope
  /// (payload deserialization failure): count + quarantine, as if the
  /// envelope check had failed.
  void mark_corrupt(const std::string& kind, uint64_t digest);

  /// True when a remote tier is attached — combined with
  /// options().prefetch this gates wavefront prefetching.
  bool has_remote() const;

  /// Split `digests` (all of one kind) into one digest-list per remote
  /// shard, dropping digests already present locally or already
  /// requested by an earlier prefetch (each surviving digest is reserved
  /// so overlapping levels never ask twice). Pure bookkeeping — no I/O —
  /// so the driver can compute the groups cheaply before scheduling one
  /// prefetch() per group. Empty when no remote tier is attached.
  std::vector<std::vector<uint64_t>> prefetch_groups(
      const std::string& kind, const std::vector<uint64_t>& digests);

  /// Issue one BATCH_GET for `digests` (normally one prefetch_groups()
  /// entry, i.e. the keys of a single shard) and land validated results
  /// in the in-memory prefetch buffer, where the next load() of that key
  /// consumes them without touching the network. Runs concurrently with
  /// load()/store() on other threads; returns the number of blobs that
  /// landed.
  size_t prefetch(const std::string& kind, uint64_t format_hash,
                  const std::vector<uint64_t>& digests);

  /// Write pending blobs and the index to disk, then enforce max_bytes by
  /// LRU eviction. No-op in read-only mode.
  void flush();

  /// Delete every artifact and the index (fortdc -cache-clear).
  void clear();

  struct Counters {
    uint64_t hits = 0;         // load() served from disk or pending buffer
    uint64_t misses = 0;       // absent artifacts (corrupt loads also miss)
    uint64_t writes = 0;       // blobs flushed to disk
    uint64_t evictions = 0;    // blobs removed by LRU GC
    uint64_t corrupt = 0;      // envelope/codec validation failures
    uint64_t remote_hits = 0;  // served by the remote tier (and promoted)
    uint64_t prefetch_issued = 0;  // keys requested by wavefront prefetch
    uint64_t prefetch_hits = 0;    // prefetched blobs that landed
  };
  Counters counters() const;

  /// Artifacts currently known (on disk + pending).
  size_t size() const;

  static std::string hex_digest(uint64_t digest);

  /// True iff `kind` is safe to embed in a blob path: non-empty, at most
  /// 64 chars, only [A-Za-z0-9_.-], and not "." or "..". Everything else
  /// — in particular anything containing '/' — is rejected before a path
  /// is ever built from it, so a hostile peer of the cache daemon cannot
  /// steer reads/writes/deletes outside the cache directory. Invalid
  /// kinds read as misses and store as dropped writes.
  static bool valid_kind(const std::string& kind);

private:
  struct Entry {
    uint64_t size = 0;  // blob file size in bytes
    uint64_t tick = 0;  // LRU clock value of the last access
  };
  struct PendingBlob {
    std::vector<uint8_t> blob;  // enveloped bytes
    bool from_remote = false;   // promotion — do not echo back over the wire
  };
  using Key = std::pair<std::string, uint64_t>;  // (kind, digest)

  std::string blob_path(const std::string& kind, uint64_t digest) const;
  std::string index_path() const;
  void load_index_locked();
  void quarantine_locked(const std::string& kind, uint64_t digest);
  /// Local tiers only (pending, then disk): the validated enveloped blob,
  /// or nullopt. Counts hits/corruption but NOT misses (the caller may
  /// still consult the remote tier).
  std::optional<std::vector<uint8_t>> local_blob_locked(
      const std::string& kind, uint64_t format_hash, uint64_t digest);
  void flush_locked(std::vector<std::pair<Key, std::vector<uint8_t>>>* to_put);

  mutable std::mutex mu_;
  CacheOptions options_;
  StorageBackend* remote_ = nullptr;
  std::map<Key, Entry> index_;
  std::map<Key, PendingBlob> pending_;
  /// Enveloped blobs landed by prefetch(), consumed (and promoted into
  /// pending_ unless read-only) by the next load() of their key. Kept
  /// separate from pending_ so a read-only store never flushes them.
  std::map<Key, std::vector<uint8_t>> prefetch_;
  /// Keys a prefetch has already requested (hit or miss) — dedups
  /// overlapping wavefront levels so a digest is asked for at most once.
  std::set<Key> prefetch_requested_;
  uint64_t next_tick_ = 1;
  Counters counters_;
  bool index_dirty_ = false;
};

}  // namespace fortd
