// Content-hashed procedure cache for interprocedural code generation.
//
// The paper's §8 recompilation tests decide, after an edit, which
// procedures must be *recompiled*; this cache is the constructive
// counterpart: generated SPMD procedures are keyed by a digest of every
// input their generation consumed —
//   * the structural hash of the procedure body (source identity),
//   * hash_codegen_inputs: Reaching(P), overlap estimates, callee
//     interface summaries, run-time fallback status (the same hash that
//     feeds CompilationRecord.input_hashes), plus
//   * the exports (delayed comms, iteration sets, decomposition summary
//     sets, formal names) of every callee, available before a caller is
//     scheduled because generation proceeds callees-first, and
//   * the code-generation options.
// A second compile() of a program in which k procedures changed therefore
// regenerates only those k and the callers whose callee exports actually
// changed — everything else is a hit and its cached SPMD AST is cloned
// into the result.
// When a ContentStore is attached (Compiler with CacheOptions.dir set),
// the cache becomes a two-tier structure: memory misses consult the
// persistent compilation database (artifact kind "proc"), and inserts
// write through, so a *separate compiler process* sharing the cache
// directory inherits every generated procedure whose digest matches.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "codegen/codegen.hpp"

namespace fortd {

class ContentStore;

/// Everything one procedure contributes to a compiled SpmdProgram.
struct CachedProcedure {
  std::shared_ptr<const Procedure> compiled;  // generated SPMD body
  ProcExports exports;
  std::vector<ArrayStorageInfo> storage;
  CompileStats stats;  // this procedure's contribution to the counters
};

/// Digest of a ProcExports interface — what callers consume of a compiled
/// callee beyond its static interface summary.
uint64_t hash_exports(const ProcExports& exports);

/// Digest of the option fields that change generated code shape.
/// options.jobs is excluded — the schedule must not change the code.
uint64_t hash_codegen_options(const CodegenOptions& options);

/// The cache key for one procedure: structural source hash +
/// hash_codegen_inputs (§8 recompilation-test inputs) + options + the
/// exports and formal names of every callee. `callee_exports` must hold
/// entries for all of the procedure's callees (guaranteed when levels are
/// scheduled callees-first).
uint64_t procedure_digest(const Procedure& proc, const BoundProgram& program,
                          const IpaContext& ipa,
                          const OverlapEstimates& overlaps,
                          const CodegenOptions& options,
                          const std::map<std::string, ProcExports>& callee_exports);

/// Artifact codec for the persistent tier. The payload is a field-exact
/// binary encoding of CachedProcedure (SPMD body, exports, storage,
/// stats); deserialize returns nullopt on any malformed payload.
extern const char kProcArtifactKind[];
uint64_t proc_artifact_format_hash();
std::vector<uint8_t> serialize_cached_procedure(const CachedProcedure& entry);
std::optional<CachedProcedure> deserialize_cached_procedure(
    const std::vector<uint8_t>& payload);

class CompilationCache {
public:
  /// Attach the persistent second tier (may be null to detach). Not
  /// thread-safe against concurrent lookups — call before compiling.
  void attach_store(ContentStore* store) { store_ = store; }

  /// The attached persistent tier (null when memory-only) — codegen uses
  /// it to issue wavefront prefetches against the remote shards.
  ContentStore* store() const { return store_; }

  /// nullptr on miss in both tiers; the entry stays owned by the cache.
  /// A disk-tier hit is promoted into the memory tier and counted as a
  /// hit here (the store keeps its own counters).
  std::shared_ptr<const CachedProcedure> lookup(uint64_t digest);
  void insert(uint64_t digest, CachedProcedure entry);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t size() const;
  /// Clears the memory tier only; the attached store is unaffected.
  void clear();

private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::shared_ptr<const CachedProcedure>> entries_;
  ContentStore* store_ = nullptr;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace fortd
