// fortd-cached — the remote compilation-cache daemon.
//
// Serves a ContentStore directory over TCP to fortdc clients
// (-cache-remote HOST:PORT): GETs answer from the content-addressed
// blob store, PUTs are checksum-vetted and written through to it, so a
// team (or a CI fleet) shares one warm cache — the first build of a
// changed procedure anywhere makes it a cache hit everywhere.
//
// Daemons scale out by just starting more of them: clients given a
// comma-separated `-cache-remote` list spread keys across the fleet by
// consistent hashing, so shards need no configuration and never talk
// to each other. Each should serve its own -dir.
//
//   fortd-cached -dir D [options]
//     -dir D          cache directory to serve (required)
//     -host H         bind address (default 127.0.0.1)
//     -port N         TCP port (default 4815; 0 picks an ephemeral port)
//     -j N            request worker threads (default 2)
//     -max-bytes N    LRU size bound of the store (default 256 MiB)
//     -read-only      serve GETs, deny PUTs
//     -metrics-json   print the metrics JSON to stdout every 10 seconds
//
// Runs in the foreground until SIGINT/SIGTERM, then flushes the store
// and prints a final metrics line. Exit codes: 0 clean shutdown, 2 usage.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "driver/compilation_db.hpp"
#include "remote/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace fortd;
  CacheOptions cache_options;
  remote::DaemonOptions daemon_options;
  daemon_options.port = 4815;
  int jobs = 2;
  bool metrics_json = false;

  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-dir") && i + 1 < argc) {
      cache_options.dir = argv[++i];
    } else if (!std::strcmp(argv[i], "-host") && i + 1 < argc) {
      daemon_options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "-port") && i + 1 < argc) {
      daemon_options.port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-j") && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-max-bytes") && i + 1 < argc) {
      cache_options.max_bytes = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-read-only")) {
      cache_options.read_only = true;
    } else if (!std::strcmp(argv[i], "-metrics-json")) {
      metrics_json = true;
    } else {
      std::fprintf(stderr, "fortd-cached: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (cache_options.dir.empty()) {
    std::fprintf(stderr,
                 "usage: fortd-cached -dir D [-host H] [-port N] [-j N] "
                 "[-max-bytes N] [-read-only] [-metrics-json]\n");
    return 2;
  }

  ContentStore store(cache_options);
  ThreadPool pool(jobs < 1 ? 0 : jobs - 1);
  remote::CacheDaemon daemon(&store, &pool, daemon_options);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "fortd-cached: %s\n", err.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "fortd-cached: listening on %s:%d, serving %s (%s, %zu "
               "artifact(s))\n",
               daemon_options.host.c_str(), daemon.port(),
               cache_options.dir.c_str(),
               cache_options.read_only ? "read-only" : "read-write",
               store.size());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  int ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (metrics_json && ++ticks % 100 == 0)
      std::fprintf(stdout, "%s\n", daemon.metrics_json().c_str());
  }

  daemon.stop();
  std::fprintf(stdout, "%s\n", daemon.metrics_json().c_str());
  std::fprintf(stderr, "fortd-cached: shut down cleanly\n");
  return 0;
}
