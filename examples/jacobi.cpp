// Jacobi relaxation with two arrays (ping-pong): the data-parallel
// workload the paper's introduction motivates. Exercises communication
// behaviour the other examples do not:
//   * both a negative (-1) and positive (+1) shift against a *different*
//     array (u_new(i) reads u(i-1) and u(i+1)), and
//   * correct placement of the vectorized messages at the top of the
//     *time* loop body — they cannot be hoisted further because the
//     copy-back writes u every time step (a true dependence carried by
//     the time loop), but they are vectorized out of the sweep loop.
#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace {

const char* kJacobi = R"(
      program jacobi
      real u(256)
      real unew(256)
      integer i, t
      distribute u(block)
      distribute unew(block)
      do i = 1, 256
        u(i) = modp(i*13, 97) * 1.0
      enddo
      do t = 1, 20
        do i = 2, 255
          unew(i) = 0.5 * (u(i-1) + u(i+1))
        enddo
        do i = 2, 255
          u(i) = unew(i)
        enddo
      enddo
      end
)";

}  // namespace

int main(int argc, char**) {
  using namespace fortd;
  const bool verbose = argc > 1;

  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult result = compiler.compile_source(kJacobi);
  if (verbose) std::printf("%s\n", print_spmd(result.spmd).c_str());

  RunResult run = simulate(result.spmd);
  // Per time step: one +1 shift and one -1 shift, each 3 guarded
  // messages at P=4 -> 6 messages x 20 steps = 120.
  std::printf("simulated time: %.1f us, messages: %lld (expect 120), bytes: %lld\n",
              run.sim_time_us, static_cast<long long>(run.messages),
              static_cast<long long>(run.bytes));

  // Sequential reference.
  const int n = 256;
  std::vector<double> u(static_cast<size_t>(n + 1)), w(static_cast<size_t>(n + 1));
  for (int i = 1; i <= n; ++i) u[static_cast<size_t>(i)] = (i * 13) % 97;
  for (int t = 0; t < 20; ++t) {
    for (int i = 2; i <= n - 1; ++i)
      w[static_cast<size_t>(i)] =
          0.5 * (u[static_cast<size_t>(i - 1)] + u[static_cast<size_t>(i + 1)]);
    for (int i = 2; i <= n - 1; ++i) u[static_cast<size_t>(i)] = w[static_cast<size_t>(i)];
  }

  DecompSpec block;
  block.dists = {DistSpec{DistKind::Block, 0}};
  auto got = run.gather("u", block);
  double max_err = 0.0;
  for (int i = 1; i <= n; ++i)
    max_err = std::max(max_err,
                       std::fabs(got[static_cast<size_t>(i - 1)] - u[static_cast<size_t>(i)]));
  bool msgs_ok = run.messages == 120;
  std::printf("max |parallel - sequential| = %.3g  (%s)\n", max_err,
              max_err < 1e-9 && msgs_ok ? "PASS" : "FAIL");
  return (max_err < 1e-9 && msgs_ok) ? 0 : 1;
}
