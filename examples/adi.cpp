// ADI-style alternating sweeps — the computation §6 motivates dynamic
// data decomposition with: a row phase (recurrence along rows) wants rows
// local, a column phase wants columns local, so the array is redistributed
// between phases every time step. Both sweeps then run with ZERO
// communication; all data motion is the two remaps per step, which the
// simulator charges through the remap library.
#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace {

const char* kAdi = R"(
      program adi
      real u(48,48)
      integer i, j, t
      distribute u(block,:)
      do i = 1, 48
        do j = 1, 48
          u(i,j) = modp(i*3 + j*5, 11) + 1
        enddo
      enddo
      do t = 1, 4
        call rowsweep(u)
        distribute u(:,block)
        call colsweep(u)
        distribute u(block,:)
      enddo
      end

      subroutine rowsweep(u)
      real u(48,48)
      integer i, j
      do i = 1, 48
        do j = 2, 48
          u(i,j) = u(i,j) + 0.5*u(i,j-1)
        enddo
      enddo
      end

      subroutine colsweep(u)
      real u(48,48)
      integer i, j
      do j = 1, 48
        do i = 2, 48
          u(i,j) = u(i,j) + 0.5*u(i-1,j)
        enddo
      enddo
      end
)";

}  // namespace

int main(int argc, char**) {
  using namespace fortd;
  const bool verbose = argc > 1;

  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult result = compiler.compile_source(kAdi);
  if (verbose) std::printf("%s\n", print_spmd(result.spmd).c_str());

  RunResult run = simulate(result.spmd);
  std::printf(
      "simulated time: %.1f us, point-to-point messages: %lld, data remaps: "
      "%lld (%lld KB moved)\n",
      run.sim_time_us, static_cast<long long>(run.messages),
      static_cast<long long>(run.remaps_executed),
      static_cast<long long>(run.remap_bytes / 1024));

  // Sequential reference.
  const int n = 48;
  std::vector<std::vector<double>> u(static_cast<size_t>(n + 1),
                                     std::vector<double>(static_cast<size_t>(n + 1)));
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      u[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          ((i * 3 + j * 5) % 11) + 1;
  for (int t = 0; t < 4; ++t) {
    for (int i = 1; i <= n; ++i)
      for (int j = 2; j <= n; ++j)
        u[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            0.5 * u[static_cast<size_t>(i)][static_cast<size_t>(j - 1)];
    for (int j = 1; j <= n; ++j)
      for (int i = 2; i <= n; ++i)
        u[static_cast<size_t>(i)][static_cast<size_t>(j)] +=
            0.5 * u[static_cast<size_t>(i - 1)][static_cast<size_t>(j)];
  }

  DecompSpec rows;
  rows.dists = {DistSpec{DistKind::Block, 0}, DistSpec{DistKind::None, 0}};
  auto got = run.gather("u", rows);
  double max_err = 0.0;
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      max_err = std::max(
          max_err, std::fabs(got[static_cast<size_t>((i - 1) * n + (j - 1))] -
                             u[static_cast<size_t>(i)][static_cast<size_t>(j)]));
  std::printf("max |parallel - sequential| = %.3g  (%s)\n", max_err,
              max_err < 1e-6 ? "PASS" : "FAIL");
  return max_err < 1e-6 ? 0 : 1;
}
