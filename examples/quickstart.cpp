// Quickstart: compile the paper's Figure 1 program — a 1-D BLOCK
// distributed stencil inside a subroutine — print the generated SPMD
// message-passing code (compare with the paper's Figure 2), run it on the
// simulated 4-processor machine, and check the numerical result against a
// sequential execution.
#include <cmath>
#include <cstdio>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace {

const char* kFigure1 = R"(
      program p1
      real x(100)
      integer i
      distribute x(block)
      do i = 1, 100
        x(i) = i * 0.01
      enddo
      call f1(x)
      end

      subroutine f1(x)
      real x(100)
      integer i
      do i = 1, 95
        x(i) = f(x(i+5))
      enddo
      end
)";

}  // namespace

int main() {
  using namespace fortd;

  CodegenOptions options;
  options.n_procs = 4;
  options.strategy = Strategy::Interprocedural;

  Compiler compiler(options);
  CompileResult result = compiler.compile_source(kFigure1);

  std::printf("=== Generated SPMD program (cf. paper Fig. 2) ===\n%s\n",
              print_spmd(result.spmd).c_str());

  RunResult run = simulate(result.spmd);
  std::printf("simulated time: %.1f us, messages: %lld, bytes: %lld\n",
              run.sim_time_us, static_cast<long long>(run.messages),
              static_cast<long long>(run.bytes));

  // Sequential reference.
  double x[101];
  for (int i = 1; i <= 100; ++i) x[i] = i * 0.01;
  for (int i = 1; i <= 95; ++i) x[i] = 0.5 * x[i + 5] + 1.0;  // f(x)=0.5x+1

  DecompSpec block;
  block.dists = {DistSpec{DistKind::Block, 0}};
  std::vector<double> got = run.gather("x", block);
  double max_err = 0.0;
  for (int i = 1; i <= 100; ++i)
    max_err = std::max(max_err, std::fabs(got[static_cast<size_t>(i - 1)] - x[i]));
  std::printf("max |parallel - sequential| = %.3g  (%s)\n", max_err,
              max_err < 1e-12 ? "PASS" : "FAIL");
  return max_err < 1e-12 ? 0 : 1;
}
