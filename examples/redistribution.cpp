// The paper's Figure 15/16 program: a time-step loop whose callee
// redistributes its argument from BLOCK to CYCLIC. Delayed instantiation
// moves the remapping into the caller, where the Fig. 16 optimization
// pipeline applies:
//   none            -> 4 remaps per iteration       (Fig. 16a)
//   live decomps    -> 2 remaps per iteration       (Fig. 16b)
//   + loop-invariant-> 2 remaps total               (Fig. 16c)
//   + array kills   -> 1 data-moving remap total    (Fig. 16d)
#include <cmath>
#include <cstdio>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace {

const char* kFigure15 = R"(
      program p1
      real x(100)
      integer k, i
      distribute x(block)
      do i = 1, 100
        x(i) = i * 1.0
      enddo
      do k = 1, 10
        call f1(x)
        call f1(x)
      enddo
      call f2(x)
      end

      subroutine f1(x)
      real x(100)
      integer i
      distribute x(cyclic)
      do i = 1, 100
        x(i) = x(i) + 1.0
      enddo
      end

      subroutine f2(x)
      real x(100)
      integer i
      do i = 1, 100
        x(i) = 2.0 * i
      enddo
      end
)";

int count_remaps(const fortd::SpmdProgram& spmd, bool data_moving_only) {
  int n = 0;
  for (const auto& p : spmd.ast.procedures)
    fortd::walk_stmts(p->body, [&](const fortd::Stmt& s) {
      if (s.kind == fortd::StmtKind::Remap) ++n;
      if (!data_moving_only && s.kind == fortd::StmtKind::MarkDist) ++n;
    });
  return n;
}

}  // namespace

int main(int argc, char**) {
  using namespace fortd;
  const bool verbose = argc > 1;

  struct Level {
    DynDecompOpt opt;
    const char* name;
  } levels[] = {
      {DynDecompOpt::None, "none (16a)"},
      {DynDecompOpt::Live, "live decompositions (16b)"},
      {DynDecompOpt::LiveInvariant, "+ loop-invariant hoisting (16c)"},
      {DynDecompOpt::Full, "+ array kills (16d)"},
  };

  int fail = 0;
  for (const auto& level : levels) {
    CodegenOptions options;
    options.n_procs = 4;
    options.dyn_decomp = level.opt;
    Compiler compiler(options);
    CompileResult result = compiler.compile_source(kFigure15);
    RunResult run = simulate(result.spmd);

    // Verify values: x(i) = i, +1 twenty times, then overwritten by 2i.
    DecompSpec block;
    block.dists = {DistSpec{DistKind::Block, 0}};
    auto got = run.gather("x", block);
    double max_err = 0.0;
    for (int i = 1; i <= 100; ++i)
      max_err = std::max(max_err,
                         std::fabs(got[static_cast<size_t>(i - 1)] - 2.0 * i));

    std::printf(
        "%-32s static remap calls: %d, executed data remaps: %lld "
        "(%.0f KB moved), time %.0f us, err %.2g\n",
        level.name, count_remaps(result.spmd, true),
        static_cast<long long>(run.remaps_executed),
        run.remap_bytes / 1024.0, run.sim_time_us, max_err);
    if (verbose && level.opt == DynDecompOpt::Full)
      std::printf("%s\n", print_spmd(result.spmd).c_str());
    if (max_err > 1e-12) fail = 1;
  }
  return fail;
}
