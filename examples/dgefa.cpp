// The paper's case study (§1/§9): LU factorization with partial pivoting
// (`dgefa` from LINPACK), written in Fortran D with `idamax`, `dswap`,
// `dscal`, and `daxpy` as separate subroutines, the matrix distributed
// CYCLIC by columns. Interprocedural compilation must:
//   * inherit the decomposition into all four leaf routines,
//   * guard the pivot search / scaling on the owner of column k and
//     broadcast the pivot index,
//   * reduce dswap's and the update's column loops to locally owned
//     columns (stride-P cyclic loops), and
//   * vectorize the pivot-column broadcast out of the j loop (one
//     broadcast per step k, placed after dscal).
//
// The factorization result is verified against a sequential LU.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace fortd_dgefa {

std::string dgefa_source(int n) {
  std::string ns = std::to_string(n);
  return R"(
      program main
      parameter (n = )" + ns + R"()
      real a(n,n)
      real ipvt(n)
      integer i, j, k, ip
      distribute a(:,cyclic)
      do j = 1, n
        do i = 1, n
          a(i,j) = modp(i*7 + j*3, 13) + 1
        enddo
        a(j,j) = a(j,j) + n*13
      enddo
      do k = 1, n-1
        call idamax(a, k, n, ip)
        ipvt(k) = ip
        if (ip .ne. k) then
          call dswap(a, k, ip, n)
        endif
        call dscal(a, k, n)
        do j = k+1, n
          call daxpy(a, k, j, n)
        enddo
      enddo
      end

      subroutine idamax(a, k, n, ip)
      parameter (nmax = )" + ns + R"()
      real a(nmax,nmax)
      integer k, n, ip, i
      real tmax
      tmax = 0.0
      ip = k
      do i = k, n
        if (abs(a(i,k)) .gt. tmax) then
          tmax = abs(a(i,k))
          ip = i
        endif
      enddo
      end

      subroutine dswap(a, k, ip, n)
      parameter (nmax = )" + ns + R"()
      real a(nmax,nmax)
      integer k, ip, n, j
      real t1
      do j = 1, n
        t1 = a(k,j)
        a(k,j) = a(ip,j)
        a(ip,j) = t1
      enddo
      end

      subroutine dscal(a, k, n)
      parameter (nmax = )" + ns + R"()
      real a(nmax,nmax)
      integer k, n, i
      do i = k+1, n
        a(i,k) = a(i,k) / a(k,k)
      enddo
      end

      subroutine daxpy(a, k, j, n)
      parameter (nmax = )" + ns + R"()
      real a(nmax,nmax)
      integer k, j, n, i
      do i = k+1, n
        a(i,j) = a(i,j) - a(i,k) * a(k,j)
      enddo
      end
)";
}

/// Sequential reference LU (same pivoting rule).
void sequential_lu(std::vector<std::vector<double>>& a, int n) {
  for (int k = 1; k <= n - 1; ++k) {
    int ip = k;
    double tmax = 0.0;
    for (int i = k; i <= n; ++i)
      if (std::fabs(a[i][k]) > tmax) {
        tmax = std::fabs(a[i][k]);
        ip = i;
      }
    if (ip != k)
      for (int j = 1; j <= n; ++j) std::swap(a[k][j], a[ip][j]);
    for (int i = k + 1; i <= n; ++i) a[i][k] /= a[k][k];
    for (int j = k + 1; j <= n; ++j)
      for (int i = k + 1; i <= n; ++i) a[i][j] -= a[i][k] * a[k][j];
  }
}

}  // namespace fortd_dgefa

int main(int argc, char**) {
  using namespace fortd;
  const int n = 48;
  const bool verbose = argc > 1;

  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult result = compiler.compile_source(fortd_dgefa::dgefa_source(n));

  if (verbose) std::printf("%s\n", print_spmd(result.spmd).c_str());
  std::printf(
      "guards: %d, reduced loops: %d, scalar bcasts: %d, vectorized msgs: %d, "
      "delayed iter-sets: %d, delayed comms: %d\n",
      result.spmd.stats.guards_inserted, result.spmd.stats.loops_bounds_reduced,
      result.spmd.stats.scalar_broadcasts, result.spmd.stats.vectorized_messages,
      result.spmd.stats.delayed_iter_sets_exported,
      result.spmd.stats.delayed_comms_exported);

  RunResult run = simulate(result.spmd);
  std::printf("simulated time: %.1f us, messages: %lld, bytes: %lld\n",
              run.sim_time_us, static_cast<long long>(run.messages),
              static_cast<long long>(run.bytes));

  // Verify against sequential LU.
  std::vector<std::vector<double>> ref(static_cast<size_t>(n + 1),
                                       std::vector<double>(static_cast<size_t>(n + 1)));
  for (int j = 1; j <= n; ++j) {
    for (int i = 1; i <= n; ++i)
      ref[static_cast<size_t>(i)][static_cast<size_t>(j)] =
          ((i * 7 + j * 3) % 13) + 1;
    ref[static_cast<size_t>(j)][static_cast<size_t>(j)] += n * 13;
  }
  fortd_dgefa::sequential_lu(ref, n);

  DecompSpec colcyc;
  colcyc.dists = {DistSpec{DistKind::None, 0}, DistSpec{DistKind::Cyclic, 0}};
  auto got = run.gather("a", colcyc);
  double max_err = 0.0;
  for (int i = 1; i <= n; ++i)
    for (int j = 1; j <= n; ++j)
      max_err = std::max(
          max_err,
          std::fabs(got[static_cast<size_t>((i - 1) * n + (j - 1))] -
                    ref[static_cast<size_t>(i)][static_cast<size_t>(j)]));
  std::printf("max |parallel - sequential LU| = %.3g  (%s)\n", max_err,
              max_err < 1e-9 ? "PASS" : "FAIL");
  return max_err < 1e-9 ? 0 : 1;
}
