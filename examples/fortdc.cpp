// fortdc — a command-line driver for the library: compile a Fortran D
// source file, print the generated SPMD message-passing program, and
// optionally run it on the simulated machine.
//
//   fortdc [options] file.fd
//     -p N, -P N    SPMD processors (default 4)
//     -j N          code-generation worker threads (default 1; output is
//                   byte-identical for any value)
//     -s STRAT      inter | intra | runtime  (default inter)
//     -O LEVEL      dynamic-decomposition optimization: 0..3 (default 3)
//     -cache-dir D  persistent compilation database: a second fortdc run
//                   on an unchanged program recompiles nothing; after an
//                   edit, only the procedures §8's recompilation tests
//                   dirty
//     -cache-max-bytes N  LRU size bound of the cache dir (default 256 MiB)
//     -cache-clear  empty the cache directory before compiling
//     -cache-remote HOST:PORT[,HOST:PORT...]  consult a fortd-cached
//                   fleet after local misses and write new artifacts
//                   through to it. Keys spread over the endpoints by
//                   consistent (rendezvous) hashing, so every fortdc
//                   with the same list agrees on which daemon owns a
//                   key. Each shard has its own circuit breaker: a dead
//                   daemon degrades only its key range, and any network
//                   problem degrades to local-only compilation with a
//                   single diagnostic, never a compile failure
//     -cache-remote-timeout-ms N  per-request deadline (default 250)
//     -cache-no-prefetch  disable the wavefront prefetcher (one
//                   BATCH_GET per shard for the next level's artifacts,
//                   overlapped with this level's code generation)
//     -cache-stats-json  print cumulative per-tier cache counters as JSON
//                   to stdout after compiling
//     -run          execute after compiling: run the generated SPMD
//                   program at -p processors, diff the numeric results
//                   against a serial execution of the original program,
//                   and (threads backend) cross-check observed message
//                   counts/bytes against the simulator's predictions
//     -backend B    sim | threads: execution backend for -run (default
//                   threads — one OS thread per SPMD process exchanging
//                   messages through rendezvous channels; sim is the
//                   logical-clock machine simulator)
//     -analyze      run the interprocedural lint checkers and the SPMD
//                   communication verifier; print findings to stderr
//     -Werror       with -analyze: exit 3 when any finding is reported
//     -lint-json    with -analyze: print lint findings as JSON to stdout
//     -sched S      steal | wavefront: schedule of the parallel codegen
//                   and IPA passes (default steal — barrier-free
//                   work-stealing over the call graph; wavefront keeps
//                   the depth-leveled baseline). Output is
//                   byte-identical either way
//     -timings      report per-phase wall-clock timings and, under the
//                   work-stealing schedule, scheduler counters (tasks
//                   executed/stolen, ready-queue peak, critical path,
//                   per-pass idle time)
//     -quiet        suppress the generated-code listing
//     -server HOST:PORT  compile via a resident fortdd daemon: the
//                   daemon's hot caches make repeat and incremental
//                   compiles near-instant across fortdc invocations.
//                   Output (stdout listing, -lint-json, exit codes) is
//                   identical to a local compile; when the daemon is
//                   unreachable, draining, or at capacity, fortdc prints
//                   one warning line and compiles locally — a daemon
//                   problem is never a compile error
//     -server-timeout-ms N  round-trip budget before the local fallback
//                   (default 30000)
//
// Exit codes: 0 success, 1 compile/execution error, 2 usage,
// 3 lint/verifier findings promoted by -Werror, 4 conflicting flag
// combination, 5 execution-harness mismatch (numerics differ from the
// serial reference, or observed traffic differs from the simulator's
// prediction). The -server path preserves this contract: a served
// compile exits exactly as the same local compile would.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"
#include "frontend/parser.hpp"
#include "runtime/harness.hpp"
#include "service/client.hpp"

int main(int argc, char** argv) {
  using namespace fortd;
  CodegenOptions options;
  LintOptions lint_options;
  CacheOptions cache_options;
  bool cache_clear = false;
  bool run = false;
  bool timings = false;
  bool quiet = false;
  bool werror = false;
  bool lint_json = false;
  bool cache_stats_json = false;
  BackendKind backend = BackendKind::Threaded;
  bool backend_set = false;
  const char* path = nullptr;
  const char* server_spec = nullptr;
  int server_timeout_ms = 30000;

  for (int i = 1; i < argc; ++i) {
    if ((!std::strcmp(argv[i], "-p") || !std::strcmp(argv[i], "-P")) &&
        i + 1 < argc) {
      options.n_procs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-j") && i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-s") && i + 1 < argc) {
      const char* s = argv[++i];
      options.strategy = !std::strcmp(s, "intra") ? Strategy::Intraprocedural
                         : !std::strcmp(s, "runtime")
                             ? Strategy::RuntimeResolution
                             : Strategy::Interprocedural;
    } else if (!std::strcmp(argv[i], "-O") && i + 1 < argc) {
      int lvl = std::atoi(argv[++i]);
      options.dyn_decomp = lvl <= 0   ? DynDecompOpt::None
                           : lvl == 1 ? DynDecompOpt::Live
                           : lvl == 2 ? DynDecompOpt::LiveInvariant
                                      : DynDecompOpt::Full;
    } else if (!std::strcmp(argv[i], "-sched") && i + 1 < argc) {
      const char* s = argv[++i];
      if (!std::strcmp(s, "wavefront")) {
        options.scheduler = Scheduler::Wavefront;
      } else if (!std::strcmp(s, "steal")) {
        options.scheduler = Scheduler::WorkStealing;
      } else {
        std::fprintf(stderr, "fortdc: -sched expects steal|wavefront\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "-cache-dir") && i + 1 < argc) {
      cache_options.dir = argv[++i];
    } else if (!std::strcmp(argv[i], "-cache-max-bytes") && i + 1 < argc) {
      cache_options.max_bytes =
          static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-cache-remote") && i + 1 < argc) {
      cache_options.remote_endpoint = argv[++i];
    } else if (!std::strcmp(argv[i], "-cache-remote-timeout-ms") &&
               i + 1 < argc) {
      cache_options.remote_timeout_ms = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-cache-no-prefetch")) {
      cache_options.prefetch = false;
    } else if (!std::strcmp(argv[i], "-cache-stats-json")) {
      cache_stats_json = true;
    } else if (!std::strcmp(argv[i], "-cache-clear")) {
      cache_clear = true;
    } else if (!std::strcmp(argv[i], "-run")) {
      run = true;
    } else if (!std::strcmp(argv[i], "-backend") && i + 1 < argc) {
      auto kind = parse_backend_kind(argv[++i]);
      if (!kind) {
        std::fprintf(stderr, "fortdc: -backend expects sim|threads\n");
        return 2;
      }
      backend = *kind;
      backend_set = true;
    } else if (!std::strcmp(argv[i], "-analyze")) {
      lint_options.analyze = true;
      lint_options.verify_spmd = true;
    } else if (!std::strcmp(argv[i], "-Werror")) {
      werror = true;
    } else if (!std::strcmp(argv[i], "-lint-json")) {
      lint_json = true;
    } else if (!std::strcmp(argv[i], "-timings")) {
      timings = true;
    } else if (!std::strcmp(argv[i], "-quiet")) {
      quiet = true;
    } else if (!std::strcmp(argv[i], "-server") && i + 1 < argc) {
      server_spec = argv[++i];
    } else if (!std::strcmp(argv[i], "-server-timeout-ms") && i + 1 < argc) {
      server_timeout_ms = std::atoi(argv[++i]);
    } else if (argv[i][0] != '-') {
      path = argv[i];
    } else {
      std::fprintf(stderr, "fortdc: unknown option '%s'\n", argv[i]);
      return 2;
    }
  }
  if (!path) {
    std::fprintf(stderr,
                 "usage: fortdc [-p N] [-j N] [-s inter|intra|runtime] "
                 "[-O 0..3] [-sched steal|wavefront] "
                 "[-cache-dir D] [-cache-max-bytes N] "
                 "[-cache-clear] [-cache-remote HOST:PORT[,HOST:PORT...]] "
                 "[-cache-remote-timeout-ms N] [-cache-no-prefetch] "
                 "[-cache-stats-json] [-run] [-backend sim|threads] "
                 "[-analyze] [-Werror] [-lint-json] [-timings] [-quiet] "
                 "[-server HOST:PORT] [-server-timeout-ms N] file.fd\n");
    return 2;
  }
  if (cache_clear && cache_options.dir.empty()) {
    std::fprintf(stderr, "fortdc: -cache-clear requires -cache-dir\n");
    return 2;
  }
  // Conflicting flag combinations get their own exit code (4) so scripts
  // can tell "you asked for nonsense" apart from a mere usage error.
  if (backend_set && !run) {
    std::fprintf(stderr,
                 "fortdc: -backend selects the -run execution backend; "
                 "it does nothing without -run\n");
    return 4;
  }
  if ((werror || lint_json) && !lint_options.analyze) {
    std::fprintf(stderr, "fortdc: %s is an -analyze-only mode; add -analyze\n",
                 werror ? "-Werror" : "-lint-json");
    return 4;
  }
  if (run && lint_json) {
    std::fprintf(stderr,
                 "fortdc: -run conflicts with -lint-json (both own the "
                 "machine-readable stdout stream)\n");
    return 4;
  }
  if (server_spec && run) {
    std::fprintf(stderr,
                 "fortdc: -server conflicts with -run (execution needs the "
                 "in-process compile result; drop -server to run)\n");
    return 4;
  }
  std::optional<service::ClientOptions> server_options;
  if (server_spec) {
    server_options = service::parse_server_endpoint(server_spec);
    if (!server_options) {
      std::fprintf(stderr, "fortdc: -server expects HOST:PORT, got '%s'\n",
                   server_spec);
      return 2;
    }
    server_options->timeout_ms = server_timeout_ms;
  }

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "fortdc: cannot open '%s'\n", path);
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  // Served compile: ship source + options to the resident daemon. Every
  // daemon-side problem falls through to the local path below with one
  // warning line — only an Ok/CompileFail reply is authoritative.
  if (server_options) {
    remote::CompileOptionsWire copts;
    copts.n_procs = static_cast<uint32_t>(options.n_procs);
    copts.strategy = static_cast<uint8_t>(options.strategy);
    copts.dyn_decomp = static_cast<uint8_t>(options.dyn_decomp);
    copts.analyze = lint_options.analyze ? 1 : 0;
    copts.want_lint_json = lint_json ? 1 : 0;
    copts.want_timings = timings ? 1 : 0;
    service::CompileClient client(*server_options);
    std::string reason;
    auto reply = client.compile(buf.str(), copts, &reason);
    if (reply) {
      if (static_cast<remote::CompileStatus>(reply->status) ==
          remote::CompileStatus::CompileFail) {
        std::fputs(reply->diagnostics.c_str(), stderr);
        return 1;
      }
      if (!quiet) std::fputs(reply->spmd.c_str(), stdout);
      if (lint_json) std::fputs(reply->lint_json.c_str(), stdout);
      std::fputs(reply->diagnostics.c_str(), stderr);
      if (timings)
        std::fprintf(stderr, "fortdc: server: %s\n",
                     reply->timings_json.c_str());
      if (cache_stats_json) {
        std::string metrics_reason;
        if (auto metrics = client.fetch_metrics(&metrics_reason))
          std::fprintf(stdout, "%s\n", metrics->c_str());
      }
      if (werror && reply->findings > 0) {
        std::fprintf(stderr, "fortdc: -Werror: %d finding(s)\n",
                     static_cast<int>(reply->findings));
        return 3;
      }
      return 0;
    }
    std::fprintf(stderr,
                 "fortdc: warning: compile server %s:%d unavailable (%s), "
                 "compiling locally\n",
                 server_options->host.c_str(), server_options->port,
                 reason.c_str());
  }

  int findings = 0;
  IpaOptions ipa_options;
  ipa_options.scheduler = options.scheduler;  // one -sched flag, both phases
  Compiler compiler(options, ipa_options, lint_options, cache_options);
  if (cache_clear) compiler.content_store()->clear();

  // Timings survive a CompileError (Compiler fills last_stats() before the
  // error propagates), so both exit paths share this report.
  auto print_timings = [&] {
    const CompilerStats& cs = compiler.last_stats();
    std::fprintf(stderr,
                 "fortdc: bind %.2fms, ipa %.2fms, overlap %.2fms, "
                 "codegen %.2fms (jobs=%d, %d level(s), %d/%d "
                 "generated), total %.2fms\n",
                 cs.bind_ms, cs.ipa_ms, cs.overlap_ms, cs.codegen_ms,
                 cs.jobs, cs.wavefront_levels, cs.generated,
                 cs.procedures, cs.total_ms);
    std::fprintf(stderr,
                 "fortdc: ipa %d round(s) (%d incremental), summaries "
                 "%d computed / %d cached / %d reused, effects %d "
                 "reused, reaching %d reused\n",
                 cs.ipa_rounds, cs.ipa_rounds_incremental,
                 cs.summaries_computed, cs.summaries_cached,
                 cs.summaries_reused, cs.effects_reused,
                 cs.reaching_reused);
    std::fprintf(stderr, "fortdc: cache: %d hit(s), %d miss(es)",
                 cs.cache_hits, cs.cache_misses);
    if (!cache_options.dir.empty())
      std::fprintf(stderr,
                   "; disk: %d hit(s), %d miss(es), %d corrupt, %d evicted",
                   cs.disk_hits, cs.disk_misses, cs.disk_corrupt,
                   cs.disk_evictions);
    if (!cache_options.remote_endpoint.empty())
      std::fprintf(stderr,
                   "; remote: %d hit(s), %d put(s), %d error(s), "
                   "%d retrie(s), %d/%d prefetched, %d shard(s)%s",
                   cs.remote_hits, cs.remote_puts, cs.remote_errors,
                   cs.remote_retries, cs.prefetch_hits, cs.prefetch_issued,
                   cs.remote_shards,
                   cs.remote_degraded          ? ", DEGRADED"
                   : cs.remote_shards_degraded ? ", PARTIALLY DEGRADED"
                                               : "");
    std::fputc('\n', stderr);
    if (options.scheduler == Scheduler::WorkStealing)
      std::fprintf(stderr,
                   "fortdc: sched: %ld task(s) (%ld stolen, %ld prefetch), "
                   "ready peak %d, critical path %d, idle codegen "
                   "%.2fms / ipa %.2fms\n",
                   cs.sched_tasks, cs.sched_stolen, cs.sched_prefetch_tasks,
                   cs.sched_ready_peak, cs.sched_critical_path,
                   cs.sched_idle_codegen_ms, cs.sched_idle_ipa_ms);
    if (lint_options.analyze)
      std::fprintf(stderr,
                   "fortdc: lint %.2fms (%d warning(s), %d note(s)), "
                   "verify %.2fms (%d unmatched)\n",
                   cs.lint_ms, cs.lint_warnings, cs.lint_notes,
                   cs.verify_ms, cs.verify_unmatched);
  };

  // One diagnostic when the remote tier (or part of it) gave up — the
  // compile itself succeeded from the local tiers; this only explains
  // the slowdown.
  auto report_remote_degradation = [&] {
    auto* rs = compiler.remote_store();
    if (!rs) return;
    if (rs->degraded()) {
      std::fprintf(stderr,
                   "fortdc: warning: remote cache unavailable, continuing "
                   "with local tiers only (%s)\n",
                   rs->degraded_reason().c_str());
    } else if (rs->any_degraded()) {
      const auto down = rs->shard_degraded();
      for (size_t s = 0; s < down.size(); ++s)
        if (down[s])
          std::fprintf(stderr,
                       "fortdc: warning: cache shard %s unavailable, its "
                       "key range regenerates locally (%s)\n",
                       rs->shard_map().endpoint(s).c_str(),
                       rs->degraded_reason().c_str());
    }
  };

  try {
    CompileResult result = compiler.compile_source(buf.str());
    if (!quiet) std::fputs(print_spmd(result.spmd).c_str(), stdout);

    if (lint_options.analyze) {
      // last_lint_report() folds the verifier's findings into the lint
      // report, so the JSON stream carries an id for every finding.
      if (lint_json)
        std::fputs(compiler.last_lint_report().json().c_str(), stdout);
      std::fputs(result.lint.text().c_str(), stderr);
      std::fputs(result.verify.text().c_str(), stderr);
      std::fprintf(stderr,
                   "fortdc: analyze: %d warning(s), %d note(s); spmd: %s\n",
                   result.lint.warnings, result.lint.notes,
                   result.verify.summary().c_str());
      findings = result.lint.warnings +
                 static_cast<int>(result.verify.diags.size());
    }

    const CompileStats& st = result.spmd.stats;
    std::fprintf(stderr,
                 "fortdc: %d clone(s), %d reduced loop(s), %d guard(s), "
                 "%d vectorized message(s), %d delayed comm(s), "
                 "%d run-time-resolved stmt(s)\n",
                 st.clones_created, st.loops_bounds_reduced,
                 st.guards_inserted, st.vectorized_messages,
                 st.delayed_comms_exported + st.delayed_comms_absorbed,
                 st.runtime_resolved_stmts);

    if (timings) print_timings();
    report_remote_degradation();
    if (cache_stats_json)
      std::fprintf(stdout, "%s\n", compiler.cache_stats_json().c_str());

    if (run) {
      // Differential execution: the serial reference interprets the
      // *original* program, so parse the source again without codegen.
      SourceProgram original = parse_program(buf.str());
      HarnessOptions hopts;
      hopts.backend = backend;
      HarnessReport hr = run_and_check(original, result.spmd, hopts);
      std::fputs(hr.text().c_str(), stderr);
      if (!hr.ok()) {
        std::fprintf(stderr, "fortdc: execution harness mismatch\n");
        return 5;
      }
    }
  } catch (const CompileError& e) {
    // The lint phase runs before code generation, so its report survives a
    // codegen failure and usually explains it (e.g. a distribution
    // conflict the call-mismatch checker names precisely).
    if (lint_options.analyze && !compiler.last_lint_report().empty()) {
      if (lint_json) std::fputs(compiler.last_lint_report().json().c_str(),
                                stdout);
      std::fputs(compiler.last_lint_report().text().c_str(), stderr);
    }
    if (timings) print_timings();
    report_remote_degradation();
    std::fprintf(stderr, "fortdc: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fortdc: execution error: %s\n", e.what());
    return 1;
  }
  if (werror && findings > 0) {
    std::fprintf(stderr, "fortdc: -Werror: %d finding(s)\n", findings);
    return 3;
  }
  return 0;
}
