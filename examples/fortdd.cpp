// fortdd — the resident compile daemon (compile-as-a-service).
//
// Accepts COMPILE requests from fortdc clients (-server HOST:PORT),
// compiles them in-process, and streams the generated SPMD listing,
// diagnostics, and per-request timings back. What makes it worth
// running: the daemon keeps hot state between requests — serialized
// ASTs keyed by source digest, one resident Compiler per option set
// (whose procedure cache, IPA summary cache, alias maps, and clone
// sets persist), and a shared on-disk ContentStore so even a restarted
// daemon is warm. A repeat compile of an unchanged program parses
// nothing and recomputes no summaries; after a one-procedure edit only
// that procedure recompiles (§8's recompilation tests, served over a
// socket).
//
// Concurrency: requests from many clients queue FIFO behind a bounded
// admission queue and run on a fixed set of executors, all sharing one
// worker pool — fair scheduling, bounded memory, and no client can
// starve another.
//
//   fortdd [options]
//     -host H         bind address (default 127.0.0.1)
//     -port N         TCP port (default 4816; 0 picks an ephemeral port)
//     -j N            code-generation worker threads per compile (default 2)
//     -executors N    concurrent compiles (default 2)
//     -max-queue N    queued requests beyond which COMPILEs are rejected
//                     (default 64; rejected clients compile locally)
//     -sessions N     resident per-option-set compilers (default 8, LRU)
//     -cache-dir D    persistent artifact store shared by all sessions;
//                     makes a restarted daemon warm from disk
//     -cache-max-bytes N  LRU size bound of the store (default 256 MiB)
//     -deadline-ms N  default per-request deadline when the client sent
//                     none (0 = unlimited)
//     -metrics-json   print the service metrics JSON to stdout every 10 s
//
// Runs in the foreground until SIGINT/SIGTERM, then *drains*: new
// COMPILEs are refused (clients fall back to local compiles), in-flight
// requests finish and their replies flush, and a final metrics line
// prints. Exit codes: 0 clean shutdown, 2 usage.
#include <csignal>
#include <cstdio>
#include <cstring>
#include <thread>

#include "service/compile_service.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace fortd;
  service::ServiceOptions options;
  options.port = 4816;
  options.jobs = 2;
  bool metrics_json = false;

  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "-host") && i + 1 < argc) {
      options.host = argv[++i];
    } else if (!std::strcmp(argv[i], "-port") && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-j") && i + 1 < argc) {
      options.jobs = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-executors") && i + 1 < argc) {
      options.executors = std::atoi(argv[++i]);
    } else if (!std::strcmp(argv[i], "-max-queue") && i + 1 < argc) {
      options.max_queue = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-sessions") && i + 1 < argc) {
      options.max_sessions = static_cast<size_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-cache-dir") && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (!std::strcmp(argv[i], "-cache-max-bytes") && i + 1 < argc) {
      options.cache_max_bytes = static_cast<uint64_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-deadline-ms") && i + 1 < argc) {
      options.default_deadline_ms =
          static_cast<uint32_t>(std::atoll(argv[++i]));
    } else if (!std::strcmp(argv[i], "-metrics-json")) {
      metrics_json = true;
    } else {
      std::fprintf(stderr, "fortdd: unknown option '%s'\n", argv[i]);
      std::fprintf(stderr,
                   "usage: fortdd [-host H] [-port N] [-j N] [-executors N] "
                   "[-max-queue N] [-sessions N] [-cache-dir D] "
                   "[-cache-max-bytes N] [-deadline-ms N] [-metrics-json]\n");
      return 2;
    }
  }

  service::CompileService daemon(options);
  std::string err;
  if (!daemon.start(&err)) {
    std::fprintf(stderr, "fortdd: %s\n", err.c_str());
    return 2;
  }
  std::fprintf(stderr,
               "fortdd: listening on %s:%d (%d executor(s), %d job(s), "
               "%zu session(s)%s%s)\n",
               options.host.c_str(), daemon.port(), options.executors,
               options.jobs, options.max_sessions,
               options.cache_dir.empty() ? "" : ", cache ",
               options.cache_dir.c_str());

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  int ticks = 0;
  while (!g_stop) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (metrics_json && ++ticks % 100 == 0)
      std::fprintf(stdout, "%s\n", daemon.metrics_json().c_str());
  }

  // Graceful drain: finish what's in flight, refuse the rest (those
  // clients compile locally), then tear down.
  daemon.drain();
  daemon.stop();
  std::fprintf(stdout, "%s\n", daemon.metrics_json().c_str());
  std::fprintf(stderr, "fortdd: drained and shut down cleanly\n");
  return 0;
}
