// The paper's Figure 4 program: one subroutine called with a row-BLOCK
// distributed array and a column-BLOCK aligned array. Interprocedural
// compilation must (a) clone f1 for the two reaching decompositions,
// (b) reduce the caller's j loop for the column clone, and (c) vectorize
// the row clone's shift communication out of the caller's i loop
// (one 5x100 message instead of 100 5-element messages — Fig. 10 vs 12).
#include <cmath>
#include <cstdio>
#include <vector>

#include "codegen/spmd_printer.hpp"
#include "driver/compiler.hpp"

namespace {

const char* kFigure4 = R"(
      program p1
      real x(100,100)
      real y(100,100)
      integer i, j
      align y(i,j) with x(j,i)
      distribute x(block,:)
      do i = 1, 100
        do j = 1, 100
          x(i,j) = i + 0.01*j
          y(i,j) = j + 0.01*i
        enddo
      enddo
      do i = 1, 100
        call f1(x, i)
      enddo
      do j = 1, 100
        call f1(y, j)
      enddo
      end

      subroutine f1(z, i)
      real z(100,100)
      integer i, k
      do k = 1, 95
        z(k,i) = f(z(k+5,i))
      enddo
      end
)";

double f(double x) { return 0.5 * x + 1.0; }

}  // namespace

int main(int argc, char**) {
  using namespace fortd;
  const bool verbose = argc > 1;

  CodegenOptions options;
  options.n_procs = 4;
  Compiler compiler(options);
  CompileResult result = compiler.compile_source(kFigure4);

  std::printf("clones created: %d  (expect 1: f1 split into row/col versions)\n",
              result.spmd.stats.clones_created);
  std::printf("vectorized messages: %d, loops bounds-reduced: %d\n",
              result.spmd.stats.vectorized_messages,
              result.spmd.stats.loops_bounds_reduced);
  if (verbose)
    std::printf("%s\n", print_spmd(result.spmd).c_str());

  RunResult run = simulate(result.spmd);
  std::printf("simulated time: %.1f us, messages: %lld, bytes: %lld\n",
              run.sim_time_us, static_cast<long long>(run.messages),
              static_cast<long long>(run.bytes));

  // Sequential reference.
  std::vector<std::vector<double>> x(101, std::vector<double>(101)),
      y(101, std::vector<double>(101));
  for (int i = 1; i <= 100; ++i)
    for (int j = 1; j <= 100; ++j) {
      x[i][j] = i + 0.01 * j;
      y[i][j] = j + 0.01 * i;
    }
  for (int i = 1; i <= 100; ++i)
    for (int k = 1; k <= 95; ++k) x[k][i] = f(x[k + 5][i]);
  for (int j = 1; j <= 100; ++j)
    for (int k = 1; k <= 95; ++k) y[k][j] = f(y[k + 5][j]);

  DecompSpec row, col;
  row.dists = {DistSpec{DistKind::Block, 0}, DistSpec{DistKind::None, 0}};
  col.dists = {DistSpec{DistKind::None, 0}, DistSpec{DistKind::Block, 0}};
  auto gx = run.gather("x", row);
  auto gy = run.gather("y", col);
  double max_err = 0.0;
  for (int i = 1; i <= 100; ++i)
    for (int j = 1; j <= 100; ++j) {
      size_t idx = static_cast<size_t>((i - 1) * 100 + (j - 1));
      max_err = std::max(max_err, std::fabs(gx[idx] - x[i][j]));
      max_err = std::max(max_err, std::fabs(gy[idx] - y[i][j]));
    }
  std::printf("max |parallel - sequential| = %.3g  (%s)\n", max_err,
              max_err < 1e-12 ? "PASS" : "FAIL");
  return max_err < 1e-12 ? 0 : 1;
}
